package des

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/workload"
)

func sharded(p Params) Params {
	p = adaptive(p)
	p.Sharded = true
	return p
}

// decisionSeq reduces a run's period log to the decisions that acted —
// the sequence the flat/sharded parity is defined over (timing of the
// interleaved "none" ticks differs by the extra sub->root hop).
type decision struct {
	Action         string
	Added, Removed int
}

func decisionSeq(res *Result) []decision {
	var out []decision
	for _, pr := range res.Periods {
		if pr.Action == "" || pr.Action == "none" {
			continue
		}
		out = append(out, decision{pr.Action, pr.Added, pr.Removed})
	}
	return out
}

// TestShardedDeterminismSameSeed: the sharded tree is as deterministic
// as the flat kernel — same seed, same run, byte for byte.
func TestShardedDeterminismSameSeed(t *testing.T) {
	run := func() *Result {
		p := sharded(baseParams(8))
		p.Initial = []Alloc{{Cluster: "fs0", Count: 8}}
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Runtime != b.Runtime || len(a.Iterations) != len(b.Iterations) {
		t.Fatalf("same seed diverged: %v vs %v", a.Runtime, b.Runtime)
	}
	for i := range a.Iterations {
		if a.Iterations[i] != b.Iterations[i] {
			t.Fatalf("iteration %d differs: %+v vs %+v", i, a.Iterations[i], b.Iterations[i])
		}
	}
	if len(a.Periods) != len(b.Periods) {
		t.Fatalf("period counts differ: %d vs %d", len(a.Periods), len(b.Periods))
	}
}

// TestShardedFlatDecisionParityDES is the satellite parity check at the
// simulator level: on a small world with identical seeds the sharded
// tree must reproduce the flat coordinator's decision sequence (the
// paper's expansion scenario: grow from 8 under-provisioned nodes).
func TestShardedFlatDecisionParityDES(t *testing.T) {
	base := func() Params {
		p := baseParams(60)
		p.Initial = []Alloc{{Cluster: "fs0", Count: 8}}
		return adaptive(p)
	}
	flat, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	ps := base()
	ps.Sharded = true
	shard, err := Run(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Completed || !shard.Completed {
		t.Fatalf("completion diverged: flat=%v sharded=%v", flat.Completed, shard.Completed)
	}
	fd, sd := decisionSeq(flat), decisionSeq(shard)
	t.Logf("flat decisions:    %+v", fd)
	t.Logf("sharded decisions: %+v", sd)
	if len(fd) != len(sd) {
		t.Fatalf("decision counts diverge: flat %d, sharded %d", len(fd), len(sd))
	}
	for i := range fd {
		if fd[i] != sd[i] {
			t.Errorf("decision %d diverges: flat %+v, sharded %+v", i, fd[i], sd[i])
		}
	}
	if flat.FinalNodes != shard.FinalNodes {
		t.Errorf("final nodes diverge: flat %d, sharded %d", flat.FinalNodes, shard.FinalNodes)
	}
	if flat.MinBandwidth != shard.MinBandwidth {
		t.Errorf("learned bandwidth diverges: flat %v, sharded %v", flat.MinBandwidth, shard.MinBandwidth)
	}
}

// TestShardedRootCrashFailover kills the root coordinator mid-run: the
// sub-coordinators must detect the silence through missed acks, elect
// the lowest live cluster as successor, and resume adaptation — the run
// completes and ticks with fresh statistics continue after the crash.
func TestShardedRootCrashFailover(t *testing.T) {
	p := sharded(baseParams(150)) // long enough to watch the resumed loop
	crashAt := 2.5 * p.Mon.Period // mid-run, after adaptation has begun
	p.Events = []Injection{{At: crashAt, Kind: InjCrashRoot}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run with root crash did not complete (%d iterations)", len(res.Iterations))
	}
	notes := annotations(res)
	if !strings.Contains(notes, "root coordinator crashed") {
		t.Fatalf("crash annotation missing: %s", notes)
	}
	if !strings.Contains(notes, "root coordinator failover: cluster fs0 elected") {
		t.Fatalf("failover annotation missing: %s", notes)
	}
	// Adaptation resumed: after the failover window (crash + detection
	// periods) some tick again decided on fresh statistics.
	resumed := false
	for _, pr := range res.Periods {
		if pr.Time > crashAt+3*p.Mon.Period && pr.Stats > 0 {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Errorf("no post-failover tick saw fresh statistics")
	}
}

// TestShardedSubCrashRecovers kills one cluster's sub-coordinator: its
// reports are lost while it is down, the restarted sub re-learns the
// reset epoch from the root's next ack, and the run still completes.
func TestShardedSubCrashRecovers(t *testing.T) {
	p := sharded(baseParams(60))
	p.Events = []Injection{{At: 2.5 * p.Mon.Period, Kind: InjCrashSub, Cluster: "fs1"}}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run with sub crash did not complete (%d iterations)", len(res.Iterations))
	}
	if !strings.Contains(annotations(res), "sub-coordinator of fs1 crashed") {
		t.Fatalf("sub crash annotation missing: %s", annotations(res))
	}
	// The coordinator kept ticking with statistics from the surviving
	// subs throughout.
	withStats := 0
	for _, pr := range res.Periods {
		if pr.Stats > 0 {
			withStats++
		}
	}
	if withStats == 0 {
		t.Error("no tick ever saw statistics")
	}
}

// bigGrid builds a uniform synthetic topology: clusters of equal size
// on healthy uplinks, the 10k-node world of ISSUE 8.
func bigGrid(clusters, perCluster int) topo.Topology {
	var t topo.Topology
	for i := 0; i < clusters; i++ {
		t.Clusters = append(t.Clusters, topo.Cluster{
			ID:              core.ClusterID(genClusterID(i)),
			Nodes:           perCluster,
			Speed:           1,
			LANLatency:      topo.LANLatency,
			LANBandwidth:    topo.FastEthernetBandwidth,
			WANLatency:      topo.WANLatencyOneWay,
			UplinkBandwidth: topo.BackboneUplink,
		})
	}
	return t
}

func genClusterID(i int) string {
	// Fixed-width IDs keep cluster ordering stable.
	const digits = "0123456789"
	return "g" + string(digits[i/100%10]) + string(digits[i/10%10]) + string(digits[i%10])
}

// TestSharded10kNodeWorld is the scale acceptance of ISSUE 8: a
// 10,000-node world (100 clusters x 100 nodes) runs to completion under
// the sharded tree, with the root consuming only per-cluster summaries.
func TestSharded10kNodeWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node world skipped in -short")
	}
	if raceEnabled {
		t.Skip("10k-node world skipped under the race detector (~10x slowdown)")
	}
	const clusters, perCluster = 100, 100
	p := Params{
		Topo: bigGrid(clusters, perCluster),
		Spec: workload.Spec{
			Name:                   "bigworld",
			Iterations:             2,
			WorkPerIteration:       60 * clusters * perCluster, // ~60 s/node
			SequentialPerIteration: 2,
			Grain:                  10, // fine grain: keep 10k deques fed
			Irregularity:           0.3,
			BytesPerNode:           1e6,
			ExchangeBytes:          1e5,
			StealMsgBytes:          4096,
		},
		Seed: 1,
		Mon:  DefaultMonitor(),
	}
	p.Mon.Period = 45 // several root ticks inside the short run
	cfg := core.DefaultConfig()
	p.Adapt = &cfg
	p.Sharded = true
	p.ProposalCap = 8 // O(1) summaries: the big-grid configuration
	for i := 0; i < clusters; i++ {
		p.Initial = append(p.Initial, Alloc{Cluster: core.ClusterID(genClusterID(i)), Count: perCluster})
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("10k-node run did not complete (%d/%d iterations, runtime %.0f)",
			len(res.Iterations), p.Spec.Iterations, res.Runtime)
	}
	if res.PeakNodes != clusters*perCluster {
		t.Errorf("peak nodes = %d, want %d", res.PeakNodes, clusters*perCluster)
	}
	if len(res.Periods) == 0 {
		t.Error("no coordinator ticks recorded")
	}
	t.Logf("runtime=%.0fs iters=%d periods=%d final=%d",
		res.Runtime, len(res.Iterations), len(res.Periods), res.FinalNodes)
}
