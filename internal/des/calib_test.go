package des

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/workload"
)

func baseParams(iters int) Params {
	return Params{
		Topo: topo.DAS2(),
		Spec: workload.BarnesHut(100000, iters),
		Seed: 1,
		Initial: []Alloc{
			{Cluster: "fs0", Count: 12},
			{Cluster: "fs1", Count: 12},
			{Cluster: "fs2", Count: 12},
		},
	}
}

// TestCalibrationBaseline pins the calibrated operating point the
// experiments rely on: on 36 DAS-2 nodes in three clusters, iterations
// take ~10 virtual seconds and efficiency sits near 0.5 — the paper's
// "reasonable set of nodes" where the coordinator takes no action.
func TestCalibrationBaseline(t *testing.T) {
	p := baseParams(10)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete: %+v", res)
	}
	mean := res.MeanIterDuration(0, len(res.Iterations))
	t.Logf("runtime=%.1fs iters=%d meanIter=%.2fs final=%d",
		res.Runtime, len(res.Iterations), mean, res.FinalNodes)
	total := res.BusySec + res.IdleSec + res.IntraSec + res.InterSec + res.BenchSec
	t.Logf("busy=%.0f idle=%.0f intra=%.0f inter=%.0f bench=%.0f eff=%.3f",
		res.BusySec, res.IdleSec, res.IntraSec, res.InterSec, res.BenchSec,
		res.BusySec/total)
	if len(res.Iterations) != 10 {
		t.Fatalf("got %d iterations, want 10", len(res.Iterations))
	}
	if mean < 6 || mean > 16 {
		t.Errorf("mean iteration %.2fs outside calibrated ~10s band", mean)
	}
	eff := res.BusySec / total
	if eff < 0.38 || eff > 0.62 {
		t.Errorf("efficiency %.3f outside calibrated ~0.5 band", eff)
	}
}

// TestCalibrationMonitoredWAE checks the monitored WAE the coordinator
// would see sits inside the [EMin, EMax] band at the calibrated point.
func TestCalibrationMonitoredWAE(t *testing.T) {
	p := baseParams(40) // long enough for a few monitoring periods
	p.Mon = DefaultMonitor()
	p.MonitorOnly = true
	cfg := core.DefaultConfig()
	p.Adapt = &cfg
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Periods) == 0 {
		t.Fatal("no coordinator periods recorded")
	}
	for _, pr := range res.Periods[1:] {
		t.Logf("t=%.0f WAE=%.3f nodes=%d", pr.Time, pr.WAE, pr.Nodes)
	}
	last := res.Periods[len(res.Periods)-1]
	if last.WAE < 0.3 || last.WAE > 0.62 {
		t.Errorf("steady-state WAE %.3f outside the no-action band", last.WAE)
	}
}
