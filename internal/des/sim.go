package des

import (
	"fmt"
	"sort"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/sched"
	"repro/internal/steal"
	"repro/internal/vtime"
)

type phase int

const (
	phaseSeq      phase = iota // master runs the sequential part
	phaseExchange              // nodes receive the iteration's data
	phaseCompute               // work stealing over the task tree
	phaseStream                // streaming runs: stage/queue pipeline
	phaseDone
)

// simTask is a subtree of the current iteration's computation.
type simTask struct{ work float64 }

// simNode is one simulated processor taking part in the run.
type simNode struct {
	id      core.NodeID
	cluster core.ClusterID
	ref     sched.NodeRef

	speedBase float64
	load      float64 // competing CPU load factor

	acc *metrics.Accumulator
	cum [4]float64 // lifetime busy/intra/inter/bench (metrics.Bucket order)

	participateStart vtime.Time

	// deque of ready tasks: front = oldest/biggest (steal side),
	// back = newest (own execution side) — Satin's double-ended queue.
	deque []simTask

	curWork float64      // work of the leaf being executed (0 = none)
	curItem *streamItem  // stream item being serviced (stream runs)
	curDone *vtime.Timer // completion event of the running leaf

	benching     bool
	benchPending bool
	benchTimer   *vtime.Timer
	monTimer     *vtime.Timer
	loadAtBench  float64 // load factor at the last benchmark run

	// eng is the node's slice of the shared CRS policy kernel: victim
	// selection, sync/async slot occupancy and back-off state.
	eng   *steal.Engine
	retry *vtime.Timer

	stealFree  vtime.Time // victim-side steal-handler serialisation
	lastWorkAt vtime.Time // completion time of the node's last leaf
	busyUntil  vtime.Time // end of the current leaf/benchmark: the
	// runtime only polls for steal requests between tasks, so requests
	// to a node grinding through a slow leaf wait until it finishes

	exchanging bool
	crashed    bool
	leaving    bool
	joined     bool // finished the join protocol (has the iteration data)
}

func (n *simNode) gone() bool { return n.crashed || n.leaving }
func (n *simNode) busy() bool { return n.curDone != nil || n.benching }

// effSpeed is the node's current effective speed: a competing load of
// factor L leaves the application 1/(1+L) of the CPU.
func (n *simNode) effSpeed() float64 { return n.speedBase / (1 + n.load) }

// Sim is one simulated run.
type Sim struct {
	p    Params
	k    *vtime.Sim
	net  *netmodel.Net
	pool *sched.Pool
	// kern is the shared adaptation kernel; the Sim is only its driver
	// (it feeds reports in and applies effects via simActuator). nil in
	// sharded mode, where subs and root carry the coordination state.
	kern *coord.Kernel
	subs map[core.ClusterID]*desSub
	root *desRoot

	nodes map[core.NodeID]*simNode
	order []*simNode // live nodes in deterministic order
	used  map[core.ClusterID]bool

	// stealMembers/stealView are the cached membership snapshot handed
	// to the steal engines (rebuilt lazily on churn): at 10k nodes,
	// building a fresh slice per steal attempt dominated the
	// simulator's time, and even a shared flat slice still cost an
	// O(nodes) partition inside every Engine.Next call — the
	// pre-indexed View makes each victim draw O(log cluster-size).
	stealMembers []steal.Member
	stealView    *steal.View
	membersDirty bool

	master      *simNode
	coordClst   core.ClusterID
	clusterLoad map[core.ClusterID]float64 // ambient load for joiners

	phase       phase
	iter        int
	iterStart   vtime.Time
	outstanding int // tasks alive in the current iteration
	exchWaiting int
	parked      []simTask    // requeue target when no master exists
	stream      *streamState // streaming-run state (nil for batch runs)

	res     *Result
	done    bool
	aborted bool
}

// Run executes one simulation and returns its result.
func Run(p Params) (*Result, error) {
	res, _, err := runReturningSim(p)
	return res, err
}

// runReturningSim also hands the finished Sim back for inspection
// (probes and tests read the coordinator's final report view).
func runReturningSim(p Params) (*Result, *Sim, error) {
	p.Defaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	s := &Sim{
		p:           p,
		k:           vtime.New(p.Seed),
		net:         netmodel.New(p.Topo),
		nodes:       make(map[core.NodeID]*simNode),
		used:        make(map[core.ClusterID]bool),
		clusterLoad: make(map[core.ClusterID]float64),
		stealView:   steal.NewView(),
		res:         &Result{},
	}
	pool, err := sched.NewPool(p.Topo)
	if err != nil {
		return nil, nil, err
	}
	s.pool = pool
	if p.Sharded {
		rk, err := coord.NewRoot(s.rootConfig(), &simActuator{s})
		if err != nil {
			return nil, nil, err
		}
		s.subs = make(map[core.ClusterID]*desSub)
		s.root = &desRoot{kern: rk}
	} else {
		kern, err := coord.New(s.rootConfig(), &simActuator{s})
		if err != nil {
			return nil, nil, err
		}
		s.kern = kern
	}

	// Initial allocation: the user's hand-picked starting set.
	for _, a := range p.Initial {
		refs := s.pool.AcquireN(a.Cluster, a.Count)
		if len(refs) != a.Count {
			return nil, nil, fmt.Errorf("des: could not acquire %d nodes in %s", a.Count, a.Cluster)
		}
		for _, ref := range refs {
			s.addNode(ref, true)
		}
	}
	s.setMaster(s.order[0])
	s.coordClst = s.master.cluster
	if s.root != nil {
		s.root.host = s.coordClst
	}

	for _, inj := range p.Events {
		inj := inj
		s.k.At(vtime.Time(inj.At), func() { s.inject(inj) })
	}
	if p.Mon.Enabled && (p.Adapt != nil || p.StreamSLO != nil || p.MonitorOnly) {
		if s.sharded() {
			// The subs summarize one second before the root consumes, so
			// a summary (plus its ~ms of latency) reaches the root within
			// the same period it was built in.
			s.k.At(vtime.Time(p.Mon.Period+1), s.subsTick)
			s.k.At(vtime.Time(p.Mon.Period+2), s.rootTick)
		} else {
			s.k.At(vtime.Time(p.Mon.Period+2), s.coordinatorTick)
		}
	}
	s.k.At(vtime.Time(p.MaxTime), func() {
		if !s.done {
			s.aborted = true
			s.done = true
			s.k.Stop()
		}
	})

	if p.Stream != nil {
		s.startStream()
	} else {
		s.startIteration()
	}
	s.k.Run()

	// Finalise accounting for nodes still alive.
	for _, n := range s.order {
		s.finalizeNode(n)
	}
	s.res.FinalNodes = len(s.order)
	if s.stream != nil {
		s.res.Completed = !s.aborted && s.stream.finished
	} else {
		s.res.Completed = !s.aborted && s.iter >= s.p.Spec.Iterations
	}
	s.res.MinBandwidth = s.requirements().MinBandwidth()
	s.res.BlacklistedClusters = s.requirements().BlacklistedClusters()
	for c := range s.used {
		s.res.UsedClusters = append(s.res.UsedClusters, c)
	}
	sort.Slice(s.res.UsedClusters, func(i, j int) bool {
		return s.res.UsedClusters[i] < s.res.UsedClusters[j]
	})
	return s.res, s, nil
}

// addTime books d seconds of bucket b on node n, both for the current
// monitoring period and the lifetime aggregate.
func (s *Sim) addTime(n *simNode, b metrics.Bucket, d float64) {
	n.acc.Add(b, d)
	n.cum[b] += d
}

// finalizeNode folds a departing (or surviving, at run end) node's
// lifetime accounting into the result.
func (s *Sim) finalizeNode(n *simNode) {
	life := float64(s.k.Now() - n.participateStart)
	s.res.NodeSeconds += life
	covered := 0.0
	for _, v := range n.cum {
		covered += v
	}
	s.res.BusySec += n.cum[metrics.Busy]
	s.res.IntraSec += n.cum[metrics.Intra]
	s.res.InterSec += n.cum[metrics.Inter]
	s.res.BenchSec += n.cum[metrics.Bench]
	if idle := life - covered; idle > 0 {
		s.res.IdleSec += idle
	}
	n.cum = [4]float64{}
	n.participateStart = s.k.Now()
}

// addNode brings a granted processor into the computation. Immediate
// nodes (the initial allocation) participate at once; later grants go
// through the join protocol: deployment delay, then fetching the
// application state (BytesPerNode) from the master's cluster.
func (s *Sim) addNode(ref sched.NodeRef, immediate bool) {
	spec, _ := s.p.Topo.Cluster(ref.Cluster)
	n := &simNode{
		id:        ref.Node,
		cluster:   ref.Cluster,
		ref:       ref,
		speedBase: spec.Speed,
		load:      s.clusterLoad[ref.Cluster],
		eng:       steal.New(s.p.StealPolicy, ref.Node, ref.Cluster, steal.SeedFor(s.p.Seed, ref.Node)),
	}
	start := func() {
		if s.done || n.gone() {
			return
		}
		n.participateStart = s.k.Now()
		n.acc = metrics.NewAccumulator(n.id, n.cluster, float64(s.k.Now()))
		s.nodes[n.id] = n
		s.order = append(s.order, n)
		s.membersDirty = true
		if s.sharded() {
			s.subFor(n.cluster)
		}
		s.used[n.cluster] = true
		if len(s.order) > s.res.PeakNodes {
			s.res.PeakNodes = len(s.order)
		}
		becameMaster := false
		if s.master == nil {
			s.setMaster(n)
			becameMaster = true
			if len(s.parked) > 0 {
				n.deque = append(n.deque, s.parked...)
				s.parked = nil
			}
		}
		n.joined = true
		if s.p.Mon.Enabled {
			n.benchPending = true
			s.scheduleMonitor(n)
		}
		if becameMaster {
			// The whole computation may have died before this grant
			// landed; the new master restarts whatever phase stalled.
			switch s.phase {
			case phaseSeq:
				s.startSeq()
				return
			case phaseExchange:
				s.startExchange()
				return
			case phaseCompute:
				if s.outstanding == 0 && len(s.parked) == 0 && len(n.deque) == 0 {
					// startCompute ran with no master: the root task was
					// never seeded. Seed it now.
					s.outstanding = 1
					n.deque = append(n.deque, simTask{work: s.p.Spec.IterWork(s.iter)})
				}
			}
		}
		if s.phase == phaseCompute || s.phase == phaseStream {
			s.nodeIdle(n)
		}
	}
	if immediate {
		start()
		return
	}
	s.k.After(s.p.JoinDelay, func() {
		if s.done {
			s.pool.Release(ref)
			return
		}
		// Fetch the application state (bodies) from the master's site.
		src := s.coordClst
		if s.master != nil {
			src = s.master.cluster
		}
		var doneAt vtime.Time
		if src == ref.Cluster {
			doneAt = s.net.Intra(s.k.Now(), ref.Cluster, s.p.Spec.BytesPerNode)
		} else {
			doneAt = s.net.Inter(s.k.Now(), src, ref.Cluster, s.p.Spec.BytesPerNode)
		}
		s.k.At(doneAt, start)
	})
}

// liveNodes returns the current participants (deterministic order).
func (s *Sim) liveNodes() []*simNode { return s.order }

// removeFromOrder drops n from the live list.
func (s *Sim) removeFromOrder(n *simNode) {
	for i, m := range s.order {
		if m == n {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	delete(s.nodes, n.id)
	s.membersDirty = true
	s.forgetNode(n)
}

func (s *Sim) cancelNodeTimers(n *simNode) {
	for _, t := range []*vtime.Timer{n.curDone, n.benchTimer, n.monTimer, n.retry} {
		if t != nil {
			t.Cancel()
		}
	}
	n.curDone, n.benchTimer, n.monTimer, n.retry = nil, nil, nil, nil
}

// requeue puts a task back into the computation (recompute semantics:
// Satin's fault tolerance re-executes orphaned jobs).
func (s *Sim) requeue(t simTask) {
	if s.master == nil {
		s.parked = append(s.parked, t)
		return
	}
	m := s.master
	m.deque = append(m.deque, t)
	if s.phase == phaseCompute && !m.busy() {
		s.nodeIdle(m)
	}
}

// setMaster records the master and keeps the kernel's protected set in
// sync: the master hosts the root of the computation (and, in the real
// system, the process the user started), so it must never be evicted.
func (s *Sim) setMaster(n *simNode) {
	s.master = n
	if s.kern == nil {
		s.syncProtected()
		return
	}
	if n != nil {
		s.kern.SetProtected(n.id)
	} else {
		s.kern.SetProtected()
	}
}

// pickNewMaster promotes the first live node after the master left.
func (s *Sim) pickNewMaster() {
	if len(s.order) > 0 {
		s.setMaster(s.order[0])
	} else {
		s.setMaster(nil)
	}
}

// leave removes a node gracefully (coordinator-requested): its queued
// and running jobs move back to the master with negligible cost, as in
// Satin's malleability protocol.
func (s *Sim) leave(n *simNode) {
	if n.gone() {
		return
	}
	n.leaving = true
	wasMaster := n == s.master
	wasExchanging := n.exchanging
	n.exchanging = false
	s.cancelNodeTimers(n)
	s.finalizeNode(n)
	s.removeFromOrder(n)
	if wasMaster {
		s.pickNewMaster()
	}
	for _, t := range n.deque {
		s.requeue(t)
	}
	if n.curWork > 0 {
		s.requeue(simTask{work: n.curWork})
		n.curWork = 0
	}
	if it := n.curItem; it != nil {
		// The item in service goes back to the head of its stage's queue
		// (malleability protocol: state moves off gracefully). Its clock
		// keeps running — departure still counts against the latency SLO.
		n.curItem = nil
		s.streamRequeue(it)
	}
	n.deque = nil
	s.pool.Release(n.ref)
	if wasExchanging {
		s.exchangeDone()
	}
	if wasMaster && s.phase == phaseSeq {
		s.startSeq() // restart the sequential phase on the new master
	}
}

// crash fails a node abruptly. Its work reappears elsewhere only after
// the failure is detected (CrashDetect), modelling the registry's
// heartbeat fault detection plus Satin's orphan recomputation.
func (s *Sim) crash(n *simNode) {
	if n.gone() {
		return
	}
	n.crashed = true
	wasMaster := n == s.master
	wasExchanging := n.exchanging
	n.exchanging = false
	s.cancelNodeTimers(n)
	s.finalizeNode(n)
	s.removeFromOrder(n)
	if wasMaster {
		s.pickNewMaster()
	}
	s.pool.MarkDead(n.id)
	lost := append([]simTask(nil), n.deque...)
	if n.curWork > 0 {
		lost = append(lost, simTask{work: n.curWork})
		n.curWork = 0
	}
	lostItem := n.curItem
	n.curItem = nil
	n.deque = nil
	if len(lost) > 0 || lostItem != nil {
		s.k.After(s.p.CrashDetect, func() {
			if s.done {
				return
			}
			for _, t := range lost {
				s.requeue(t)
			}
			if lostItem != nil {
				// Recomputed from the stage input after detection; the
				// item's arrival clock never stops, so the fault shows up
				// as a latency spike the SLO objective must recover from.
				s.streamRequeue(lostItem)
			}
		})
	}
	if wasExchanging {
		s.exchangeDone()
	}
	if wasMaster && s.phase == phaseSeq && s.master != nil {
		s.k.After(s.p.CrashDetect, func() {
			if !s.done && s.phase == phaseSeq {
				s.startSeq()
			}
		})
	}
}

// ---- iteration state machine ----

func (s *Sim) startIteration() {
	if s.done {
		return
	}
	s.iterStart = s.k.Now()
	s.outstanding = 0
	s.phase = phaseSeq
	s.startSeq()
}

// startSeq runs the master-only sequential phase (tree build).
func (s *Sim) startSeq() {
	if s.done || s.phase != phaseSeq {
		return
	}
	m := s.master
	if m == nil {
		return // a later join restarts the phase
	}
	if s.p.Spec.SequentialPerIteration == 0 {
		s.startExchange()
		return
	}
	if m.busy() {
		// The master is mid-benchmark; the sequential phase starts when
		// it finishes (bench completion re-enters startSeq).
		return
	}
	dur := s.p.Spec.SequentialPerIteration / m.effSpeed()
	m.curWork = -1 // marks "in sequential phase", not a requeueable leaf
	m.curDone = s.k.After(dur, func() {
		m.curDone = nil
		m.curWork = 0
		s.addTime(m, metrics.Busy, dur)
		s.startExchange()
	})
}

// startExchange distributes the iteration's data: every node receives
// BytesPerNode. Cross-cluster data travels the uplinks once per
// source/destination cluster pair (Ibis-style spanning-tree broadcast),
// then fans out over the destination LAN, so a throttled uplink delays
// a whole cluster by one remote copy per iteration — not one per node.
func (s *Sim) startExchange() {
	if s.done {
		return
	}
	s.phase = phaseExchange
	live := s.liveNodes()
	if len(live) == 0 {
		return
	}
	if s.p.Spec.ExchangeBytes == 0 {
		s.startCompute()
		return
	}
	perCluster := make(map[core.ClusterID]int)
	for _, n := range live {
		perCluster[n.cluster]++
	}
	var clusterIDs []core.ClusterID
	for c := range perCluster {
		clusterIDs = append(clusterIDs, c)
	}
	sort.Slice(clusterIDs, func(i, j int) bool { return clusterIDs[i] < clusterIDs[j] })
	total := float64(len(live))
	now := s.k.Now()

	// One cross-cluster transfer per (source, destination) pair: the
	// destination cluster holds the complete remote data once the last
	// source's copy lands.
	clusterArrive := make(map[core.ClusterID]vtime.Time, len(clusterIDs))
	remotePerCluster := make(map[core.ClusterID]float64, len(clusterIDs))
	for _, dst := range clusterIDs {
		arrive := now
		for _, src := range clusterIDs {
			if src == dst {
				continue
			}
			bytes := s.p.Spec.ExchangeBytes * float64(perCluster[src]) / total
			remotePerCluster[dst] += bytes
			if d := s.net.Inter(now, src, dst, bytes); d > arrive {
				arrive = d
			}
		}
		clusterArrive[dst] = arrive
	}

	s.exchWaiting = 0
	for _, n := range live {
		n := n
		interDone := clusterArrive[n.cluster]
		// Local fan-out: the node pulls its full working set over the
		// switched LAN (own cluster's share immediately, the remote
		// share once it arrived at the cluster head).
		lanTime := s.net.Intra(now, n.cluster, s.p.Spec.ExchangeBytes) - now
		doneAt := interDone + lanTime
		if d := now + lanTime; d > doneAt {
			doneAt = d
		}
		wait := float64(doneAt - now)
		interAttr := float64(interDone - now)
		if interAttr > wait {
			interAttr = wait
		}
		s.addTime(n, metrics.Inter, interAttr)
		s.addTime(n, metrics.Intra, wait-interAttr)
		if nc := float64(perCluster[n.cluster]); nc > 0 {
			n.acc.AddInterBytes(remotePerCluster[n.cluster] / nc)
		}
		n.exchanging = true
		s.exchWaiting++
		s.k.At(doneAt, func() {
			if !n.exchanging {
				return
			}
			n.exchanging = false
			s.exchangeDone()
		})
	}
}

func (s *Sim) exchangeDone() {
	s.exchWaiting--
	if s.exchWaiting <= 0 && s.phase == phaseExchange {
		s.startCompute()
	}
}

// startCompute seeds the task tree at the master and wakes everyone.
func (s *Sim) startCompute() {
	if s.done {
		return
	}
	s.phase = phaseCompute
	if s.master == nil {
		return
	}
	s.outstanding = 1
	s.master.deque = append(s.master.deque, simTask{work: s.p.Spec.IterWork(s.iter)})
	for _, n := range s.liveNodes() {
		if n.joined && !n.busy() {
			s.nodeIdle(n)
		}
	}
}

func (s *Sim) endIteration() {
	s.res.Iterations = append(s.res.Iterations, IterRecord{
		Index:    s.iter,
		Start:    float64(s.iterStart),
		Duration: float64(s.k.Now() - s.iterStart),
		Nodes:    len(s.order),
	})
	s.iter++
	if s.iter >= s.p.Spec.Iterations {
		s.phase = phaseDone
		s.done = true
		s.res.Runtime = float64(s.k.Now())
		s.k.Stop()
		return
	}
	s.startIteration()
}

func (s *Sim) annotate(label string) {
	s.res.Annotations = append(s.res.Annotations, Annotation{
		Time: float64(s.k.Now()), Label: label,
	})
}

// inject applies a scenario disturbance.
func (s *Sim) inject(inj Injection) {
	if s.done {
		return
	}
	label := inj.Label
	switch inj.Kind {
	case InjSetLoad:
		count := 0
		for _, n := range s.liveNodes() {
			if n.cluster != inj.Cluster {
				continue
			}
			if inj.Count > 0 && count >= inj.Count {
				break
			}
			n.load = inj.Load
			count++
		}
		if inj.Count == 0 {
			s.clusterLoad[inj.Cluster] = inj.Load
		}
		if label == "" {
			label = fmt.Sprintf("load %.0fx on %d nodes of %s", inj.Load, count, inj.Cluster)
		}
	case InjShapeUplink:
		if up := s.net.Uplink(inj.Cluster); up != nil {
			up.SetBandwidth(inj.Bandwidth)
		}
		if label == "" {
			label = fmt.Sprintf("uplink of %s shaped to %.0f B/s", inj.Cluster, inj.Bandwidth)
		}
	case InjCrash:
		var victims []*simNode
		for _, n := range s.liveNodes() {
			if n.cluster != inj.Cluster {
				continue
			}
			if inj.Count > 0 && len(victims) >= inj.Count {
				break
			}
			victims = append(victims, n)
		}
		for _, n := range victims {
			s.crash(n)
		}
		if label == "" {
			label = fmt.Sprintf("%d nodes of %s crashed", len(victims), inj.Cluster)
		}
	case InjCrashRoot:
		if s.sharded() {
			s.crashRoot()
		}
		if label == "" {
			label = "root coordinator crashed"
		}
	case InjCrashSub:
		if s.sharded() {
			s.crashSub(inj.Cluster)
		}
		if label == "" {
			label = fmt.Sprintf("sub-coordinator of %s crashed", inj.Cluster)
		}
	}
	s.annotate(label)
}
