package sched

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
)

func pool(t *testing.T) *Pool {
	t.Helper()
	tp := topo.Topology{Clusters: []topo.Cluster{
		{ID: "A", Nodes: 4, Speed: 1, LANBandwidth: 1, UplinkBandwidth: 1},
		{ID: "B", Nodes: 8, Speed: 1, LANBandwidth: 1, UplinkBandwidth: 1},
		{ID: "C", Nodes: 2, Speed: 1, LANBandwidth: 1, UplinkBandwidth: 1},
	}}
	p, err := NewPool(tp)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPoolRejectsInvalidTopology(t *testing.T) {
	if _, err := NewPool(topo.Topology{}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestPoolCounts(t *testing.T) {
	p := pool(t)
	if p.FreeCount() != 14 || p.InUseCount() != 0 {
		t.Fatalf("free=%d inuse=%d", p.FreeCount(), p.InUseCount())
	}
	got := p.AcquireN("A", 3)
	if len(got) != 3 {
		t.Fatalf("AcquireN = %v", got)
	}
	if p.FreeCount() != 11 || p.InUseCount() != 3 || p.FreeIn("A") != 1 {
		t.Fatalf("after acquire: free=%d inuse=%d freeA=%d",
			p.FreeCount(), p.InUseCount(), p.FreeIn("A"))
	}
}

func TestAcquireSpecific(t *testing.T) {
	p := pool(t)
	ref, err := p.Acquire("A", topo.NodeName("A", 2))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Node != "A/02" || ref.Cluster != "A" {
		t.Fatalf("ref = %+v", ref)
	}
	if _, err := p.Acquire("A", topo.NodeName("A", 2)); err == nil {
		t.Fatal("double acquire succeeded")
	}
	if _, err := p.Acquire("A", "Z/00"); err == nil {
		t.Fatal("acquire of unknown node succeeded")
	}
}

func TestRequestPrefersOccupiedClusters(t *testing.T) {
	p := pool(t)
	got := p.Request(3, []core.ClusterID{"C", "A"}, nil)
	if len(got) != 3 {
		t.Fatalf("got %d nodes", len(got))
	}
	// C has 2 nodes, so 2 from C then 1 from A.
	if got[0].Cluster != "C" || got[1].Cluster != "C" || got[2].Cluster != "A" {
		t.Fatalf("allocation order wrong: %+v", got)
	}
}

func TestRequestFallsBackToLargestFreeCluster(t *testing.T) {
	p := pool(t)
	got := p.Request(5, nil, nil)
	// B has most free nodes (8): all 5 should land there (locality).
	for _, r := range got {
		if r.Cluster != "B" {
			t.Fatalf("expected all nodes in B, got %+v", got)
		}
	}
}

func TestRequestHonoursVeto(t *testing.T) {
	p := pool(t)
	veto := func(n core.NodeID, c core.ClusterID) bool { return c == "B" }
	got := p.Request(10, nil, veto)
	if len(got) != 6 { // A(4) + C(2)
		t.Fatalf("got %d nodes, want 6 (B vetoed)", len(got))
	}
	for _, r := range got {
		if r.Cluster == "B" {
			t.Fatalf("vetoed cluster allocated: %+v", r)
		}
	}
}

func TestRequestPartialWhenGridBusy(t *testing.T) {
	p := pool(t)
	_ = p.Request(14, nil, nil)
	got := p.Request(3, nil, nil)
	if len(got) != 0 {
		t.Fatalf("empty pool handed out %v", got)
	}
}

func TestReleaseReturnsNode(t *testing.T) {
	p := pool(t)
	got := p.AcquireN("C", 2)
	p.Release(got[0])
	if p.FreeIn("C") != 1 || p.InUseCount() != 1 {
		t.Fatalf("freeC=%d inuse=%d", p.FreeIn("C"), p.InUseCount())
	}
	// Releasing twice is harmless.
	p.Release(got[0])
	if p.FreeIn("C") != 1 {
		t.Fatalf("double release changed pool: freeC=%d", p.FreeIn("C"))
	}
	// Released node can be re-acquired.
	if _, err := p.Acquire("C", got[0].Node); err != nil {
		t.Fatalf("re-acquire failed: %v", err)
	}
}

func TestMarkDeadInUseNodeNeverReturns(t *testing.T) {
	p := pool(t)
	got := p.AcquireN("A", 1)
	p.MarkDead(got[0].Node)
	if p.InUseCount() != 0 {
		t.Fatalf("dead node still in use")
	}
	p.Release(got[0]) // late release of a dead node must not resurrect it
	if p.FreeIn("A") != 3 {
		t.Fatalf("dead node resurrected: freeA=%d", p.FreeIn("A"))
	}
}

func TestMarkDeadFreeNode(t *testing.T) {
	p := pool(t)
	p.MarkDead(topo.NodeName("A", 0))
	if p.FreeIn("A") != 3 {
		t.Fatalf("freeA = %d, want 3", p.FreeIn("A"))
	}
	refs := p.AcquireN("A", 4)
	if len(refs) != 3 {
		t.Fatalf("acquired %d, want 3 (one dead)", len(refs))
	}
	for _, r := range refs {
		if r.Node == "A/00" {
			t.Fatal("dead node handed out")
		}
	}
}

func TestPoolConcurrentSafety(t *testing.T) {
	p := pool(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				refs := p.Request(2, []core.ClusterID{"B"}, nil)
				for _, r := range refs {
					p.Release(r)
				}
				p.FreeCount()
				p.InUseCount()
			}
		}()
	}
	wg.Wait()
	if p.FreeCount() != 14 || p.InUseCount() != 0 {
		t.Fatalf("pool leaked: free=%d inuse=%d", p.FreeCount(), p.InUseCount())
	}
}
