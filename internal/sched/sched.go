// Package sched is the grid scheduler substrate — the role Zorilla
// plays in the paper: it owns the pool of grid processors and hands
// allocations to the adaptation coordinator. Allocation is
// locality-aware (it prefers placing nodes together, first in clusters
// the application already occupies), honours the coordinator's learned
// blacklist, and supports node crashes and availability changes so the
// scenarios can take resources away.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/topo"
)

// NodeRef is a concrete processor handed out by the scheduler.
type NodeRef struct {
	Node    core.NodeID
	Cluster core.ClusterID
}

// Filter vetoes candidate resources; the coordinator passes its learned
// requirements (blacklist) in through this.
type Filter func(node core.NodeID, cluster core.ClusterID) bool

// Pool tracks which processors of a topology are free, in use, or gone.
// It is safe for concurrent use (the real runtime calls it from
// multiple goroutines; the simulator is single-threaded but shares the
// code).
type Pool struct {
	mu sync.Mutex

	clusters []topo.Cluster
	free     map[core.ClusterID][]core.NodeID // free nodes per cluster (sorted)
	inUse    map[core.NodeID]core.ClusterID
	dead     map[core.NodeID]bool
}

// NewPool builds a pool with every node of the topology free.
func NewPool(t topo.Topology) (*Pool, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{
		clusters: append([]topo.Cluster(nil), t.Clusters...),
		free:     make(map[core.ClusterID][]core.NodeID),
		inUse:    make(map[core.NodeID]core.ClusterID),
		dead:     make(map[core.NodeID]bool),
	}
	for _, c := range t.Clusters {
		ids := make([]core.NodeID, 0, c.Nodes)
		for i := 0; i < c.Nodes; i++ {
			ids = append(ids, topo.NodeName(c.ID, i))
		}
		p.free[c.ID] = ids
	}
	return p, nil
}

// FreeCount returns the number of allocatable nodes.
func (p *Pool) FreeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ids := range p.free {
		n += len(ids)
	}
	return n
}

// InUseCount returns the number of nodes currently handed out.
func (p *Pool) InUseCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inUse)
}

// Acquire hands out a specific node (used to build the user-chosen
// initial allocation of a scenario). It fails if the node is not free.
func (p *Pool) Acquire(cluster core.ClusterID, node core.NodeID) (NodeRef, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := p.free[cluster]
	for i, id := range ids {
		if id == node {
			p.free[cluster] = append(append([]core.NodeID{}, ids[:i]...), ids[i+1:]...)
			p.inUse[node] = cluster
			return NodeRef{Node: node, Cluster: cluster}, nil
		}
	}
	return NodeRef{}, fmt.Errorf("sched: node %s not free in cluster %s", node, cluster)
}

// AcquireN hands out up to n free nodes from one cluster.
func (p *Pool) AcquireN(cluster core.ClusterID, n int) []NodeRef {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.takeLocked(cluster, n, nil)
}

func (p *Pool) takeLocked(cluster core.ClusterID, n int, veto Filter) []NodeRef {
	ids := p.free[cluster]
	var taken []NodeRef
	var kept []core.NodeID
	for _, id := range ids {
		if len(taken) < n && (veto == nil || !veto(id, cluster)) {
			taken = append(taken, NodeRef{Node: id, Cluster: cluster})
			p.inUse[id] = cluster
		} else {
			kept = append(kept, id)
		}
	}
	p.free[cluster] = kept
	return taken
}

// Request allocates up to n nodes, locality-aware: clusters listed in
// prefer (the sites the application already runs on) are filled first
// in the given order, then the remaining clusters by descending free
// capacity, so new nodes land on as few new sites as possible — the
// behaviour the paper relies on Zorilla for. veto (may be nil) rejects
// individual nodes or whole clusters (the coordinator's blacklist).
// Fewer than n nodes may be returned if the grid is busy.
func (p *Pool) Request(n int, prefer []core.ClusterID, veto Filter) []NodeRef {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []NodeRef
	seen := make(map[core.ClusterID]bool)
	for _, c := range prefer {
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, p.takeLocked(c, n-len(out), veto)...)
		if len(out) >= n {
			return out
		}
	}
	// Remaining clusters by free capacity (descending), ties by ID.
	type cand struct {
		id   core.ClusterID
		free int
	}
	var rest []cand
	for _, c := range p.clusters {
		if !seen[c.ID] && len(p.free[c.ID]) > 0 {
			rest = append(rest, cand{c.ID, len(p.free[c.ID])})
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].free != rest[j].free {
			return rest[i].free > rest[j].free
		}
		return rest[i].id < rest[j].id
	})
	for _, c := range rest {
		out = append(out, p.takeLocked(c.id, n-len(out), veto)...)
		if len(out) >= n {
			break
		}
	}
	return out
}

// RequestBandwidth is Request with a minimum uplink-bandwidth
// constraint: clusters whose access link is below minBW are skipped
// entirely. This is the paper's "pass the learned bandwidth bound to
// the scheduler to avoid adding inappropriate resources" — stronger
// than blacklisting, because it also rejects clusters the application
// never touched.
func (p *Pool) RequestBandwidth(n int, prefer []core.ClusterID, veto Filter, minBW float64) []NodeRef {
	if minBW <= 0 {
		return p.Request(n, prefer, veto)
	}
	slow := make(map[core.ClusterID]bool)
	p.mu.Lock()
	for _, c := range p.clusters {
		// The learned bound is a proven-insufficient rate: the
		// application needs strictly more, and a link barely at that
		// rate is equally useless — hence the 20% safety margin.
		if c.UplinkBandwidth < minBW*1.2 {
			slow[c.ID] = true
		}
	}
	p.mu.Unlock()
	bwVeto := func(node core.NodeID, cluster core.ClusterID) bool {
		if slow[cluster] {
			return true
		}
		return veto != nil && veto(node, cluster)
	}
	var kept []core.ClusterID
	for _, c := range prefer {
		if !slow[c] {
			kept = append(kept, c)
		}
	}
	return p.Request(n, kept, bwVeto)
}

// BestAvailable returns the free, non-vetoed cluster with the fastest
// processors and how many nodes it has free. This backs opportunistic
// migration: the paper proposes measuring one processor per site
// (clusters are homogeneous) with an application benchmark the
// scheduler runs on the coordinator's behalf; the pool's static
// per-cluster speed plays that role.
func (p *Pool) BestAvailable(veto Filter) (core.ClusterID, float64, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	bestID := core.ClusterID("")
	bestSpeed := 0.0
	bestFree := 0
	for _, c := range p.clusters {
		free := 0
		for _, id := range p.free[c.ID] {
			if veto == nil || !veto(id, c.ID) {
				free++
			}
		}
		if free == 0 {
			continue
		}
		if c.Speed > bestSpeed || (c.Speed == bestSpeed && c.ID < bestID) {
			bestID, bestSpeed, bestFree = c.ID, c.Speed, free
		}
	}
	return bestID, bestSpeed, bestFree
}

// Release returns a node to the free pool (graceful leave). Releasing
// a node the pool does not consider in use is a no-op, which makes
// crash/leave races harmless.
func (p *Pool) Release(ref NodeRef) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.inUse[ref.Node]; !ok {
		return
	}
	delete(p.inUse, ref.Node)
	if p.dead[ref.Node] {
		return
	}
	p.free[ref.Cluster] = append(p.free[ref.Cluster], ref.Node)
	ids := p.free[ref.Cluster]
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// MarkDead permanently removes a node (crash): it is neither free nor
// in use afterwards and can never be handed out again.
func (p *Pool) MarkDead(node core.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead[node] = true
	if c, ok := p.inUse[node]; ok {
		delete(p.inUse, node)
		_ = c
		return
	}
	for cid, ids := range p.free {
		for i, id := range ids {
			if id == node {
				p.free[cid] = append(append([]core.NodeID{}, ids[:i]...), ids[i+1:]...)
				return
			}
		}
	}
}

// FreeIn returns the free node count of one cluster.
func (p *Pool) FreeIn(cluster core.ClusterID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free[cluster])
}
