package record

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// Sample-ring wraparound must be counted and announced exactly like
// the events path — the package doc promises "the drop is counted,
// never silent".
func TestSampleDropCounted(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a").Inc()
	r := New(4, 2)
	for i := 0; i < 5; i++ {
		r.Sample(reg)
	}
	if got := r.SamplesDropped(); got != 3 {
		t.Fatalf("SamplesDropped = %d, want 3", got)
	}
	var sb strings.Builder
	if err := r.WriteSamplesJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want dropped marker + 2 samples: %q", len(lines), lines)
	}
	var drop struct {
		Kind  string `json:"kind"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &drop); err != nil {
		t.Fatal(err)
	}
	if drop.Kind != "dropped" || drop.Count != 3 {
		t.Fatalf("first line = %+v, want dropped/3", drop)
	}
}

// Ring edge cases: capacity 1 (every push after the first is a drop)
// and the exact-wrap boundary (filling to capacity drops nothing; one
// more drops exactly one).
func TestRingEdgeCases(t *testing.T) {
	r := New(1, 1)
	reg := obs.NewRegistry()
	for i := 0; i < 3; i++ {
		r.RecordAt(float64(i), "e", nil)
		r.Sample(reg)
	}
	if evs := r.Events(); len(evs) != 1 || evs[0].Time != 2 {
		t.Fatalf("capacity-1 events = %+v", evs)
	}
	if got := r.EventsDropped(); got != 2 {
		t.Fatalf("capacity-1 events dropped = %d, want 2", got)
	}
	if got := r.SamplesDropped(); got != 2 {
		t.Fatalf("capacity-1 samples dropped = %d, want 2", got)
	}

	r = New(3, 3)
	for i := 0; i < 3; i++ {
		r.RecordAt(float64(i), "e", nil)
		r.Sample(reg)
	}
	if r.EventsDropped() != 0 || r.SamplesDropped() != 0 {
		t.Fatalf("exact fill dropped events=%d samples=%d, want 0/0",
			r.EventsDropped(), r.SamplesDropped())
	}
	r.RecordAt(3, "e", nil)
	r.Sample(reg)
	if r.EventsDropped() != 1 || r.SamplesDropped() != 1 {
		t.Fatalf("one past capacity dropped events=%d samples=%d, want 1/1",
			r.EventsDropped(), r.SamplesDropped())
	}
}

// Events and samples must live on ONE time axis: when a driver
// installs a virtual clock, samples are stamped by it too, so
// /events and /samples can be joined post-hoc.
func TestSetClockSharesAxis(t *testing.T) {
	r := New(8, 8)
	reg := obs.NewRegistry()
	vtime := 0.0
	r.SetClock(func() float64 { return vtime })

	vtime = 100
	r.Record("period", nil)
	r.Sample(reg)
	vtime = 200
	r.RecordJob("j1", "decision", nil)
	r.Sample(reg)

	evs, ss := r.Events(), r.Samples()
	if evs[0].Time != 100 || ss[0].Time != 100 {
		t.Fatalf("t=100: event at %g, sample at %g — axes diverged", evs[0].Time, ss[0].Time)
	}
	if evs[1].Time != 200 || ss[1].Time != 200 {
		t.Fatalf("t=200: event at %g, sample at %g — axes diverged", evs[1].Time, ss[1].Time)
	}
	if evs[1].Job != "j1" {
		t.Fatalf("RecordJob lost the job attribution: %+v", evs[1])
	}

	// nil restores the wall clock.
	r.SetClock(nil)
	if now := r.Now(); now >= 100 {
		t.Fatalf("wall clock not restored: Now() = %g", now)
	}
}

// capturingSink records everything forwarded through the Sink seam.
type capturingSink struct {
	events  []Event
	samples []Sample
}

func (c *capturingSink) PutEvent(e Event)   { c.events = append(c.events, e) }
func (c *capturingSink) PutSample(s Sample) { c.samples = append(c.samples, s) }

func TestSinkReceivesEventsAndSamples(t *testing.T) {
	r := New(4, 4)
	sink := &capturingSink{}
	r.SetSink(sink)
	reg := obs.NewRegistry()
	reg.Counter("c").Inc()

	r.RecordAt(1, "period", map[string]any{"WAE": 0.5})
	r.RecordJob("j1", "decision", nil)
	r.Sample(reg)

	if len(sink.events) != 2 || sink.events[0].Kind != "period" || sink.events[1].Job != "j1" {
		t.Fatalf("sink events = %+v", sink.events)
	}
	if len(sink.samples) != 1 || sink.samples[0].Counters["c"] != 1 {
		t.Fatalf("sink samples = %+v", sink.samples)
	}

	r.SetSink(nil)
	r.RecordAt(2, "period", nil)
	if len(sink.events) != 2 {
		t.Fatal("detached sink still receiving")
	}
}

// A wedged client — connected, never finishing its request headers —
// must not hold the endpoint's connection forever: ReadHeaderTimeout
// reclaims it, and regular requests keep being served.
func TestServeWedgedClient(t *testing.T) {
	old := headerTimeout
	headerTimeout = 100 * time.Millisecond
	defer func() { headerTimeout = old }()

	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, New(4, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a request but never finish the headers.
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\nX-Wedge")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	// The server must terminate the connection promptly: a plain close
	// (EOF) or a 4xx error followed by close — never a served
	// /metrics response, never an indefinite hold.
	got, _ := io.ReadAll(conn)
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("wedged connection held for %v — ReadHeaderTimeout not applied", waited)
	}
	if len(got) > 0 && !strings.HasPrefix(string(got), "HTTP/1.1 4") {
		t.Fatalf("half-sent request got served: %.80q", got)
	}

	// The endpoint still serves well-behaved clients.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("healthy request after wedged client: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after wedged client", resp.StatusCode)
	}
}

// Listener failure must surface through obs, not vanish: the serve
// goroutine's error was previously discarded.
func TestServeErrorCounted(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, New(4, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Yank the listener out from under the server: Serve returns a
	// non-shutdown error, which must be counted.
	srv.ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("record/serve_err").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter("record/serve_err").Value(); got == 0 {
		t.Fatal("record/serve_err not incremented after listener failure")
	}
	srv.Close()
}
