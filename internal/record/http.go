package record

import (
	"errors"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
)

// headerTimeout bounds how long a client may take to send its request
// headers before the connection is reclaimed, so one wedged scraper
// cannot pin the endpoint's connections forever. A var so the
// wedged-client test can shrink it.
var headerTimeout = 5 * time.Second

// Server is the observability endpoint both binaries can expose:
//
//	/metrics       — the obs registry in Prometheus text format
//	/events        — the recorder's structured events as JSONL
//	/samples       — the recorder's registry samples as JSONL
//	/debug/pprof/  — the stdlib profiler
//
// It also runs the background sampler that feeds the recorder's
// time-series ring from the registry.
type Server struct {
	rec  *Recorder
	reg  *obs.Registry
	srv  *http.Server
	ln   net.Listener
	stop chan struct{}
	done chan struct{}
}

// Serve starts the endpoint on addr (":0" picks a free port — read it
// back with Addr). samplePeriod is the registry sampling interval; 0
// disables the background sampler.
func Serve(addr string, reg *obs.Registry, rec *Recorder, samplePeriod time.Duration) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		rec:  rec,
		reg:  reg,
		ln:   ln,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/events", s.events)
	mux.HandleFunc("/samples", s.samples)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: headerTimeout}
	go func() {
		// Serve only returns on listener failure or Close; anything but
		// the orderly-shutdown sentinel is counted and logged, not
		// swallowed.
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			reg.Counter("record/serve_err").Inc()
			log.Printf("record: serve %s: %v", ln.Addr(), err)
		}
	}()
	go s.sampler(samplePeriod)
	return s, nil
}

// Addr returns the listening address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the sampler and the HTTP server.
func (s *Server) Close() {
	close(s.stop)
	<-s.done
	s.srv.Close()
}

func (s *Server) sampler(period time.Duration) {
	defer close(s.done)
	if period <= 0 {
		<-s.stop
		return
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.rec.Sample(s.reg)
		}
	}
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) events(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.rec.WriteEventsJSONL(w)
}

func (s *Server) samples(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.rec.WriteSamplesJSONL(w)
}
