package record

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRingWraparound(t *testing.T) {
	r := New(3, 3)
	for i := 0; i < 5; i++ {
		r.RecordAt(float64(i), "e", i)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("kept %d events, want 3", len(evs))
	}
	for i, want := range []float64{2, 3, 4} {
		if evs[i].Time != want {
			t.Fatalf("event %d at t=%g, want %g (oldest-first order lost)", i, evs[i].Time, want)
		}
	}
	if got := r.EventsDropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

func TestEventsJSONL(t *testing.T) {
	r := New(2, 2)
	r.RecordAt(1, "period", map[string]any{"wae": 0.4})
	r.RecordAt(2, "decision", map[string]any{"action": "add"})
	r.RecordAt(3, "period", map[string]any{"wae": 0.5})

	var sb strings.Builder
	if err := r.WriteEventsJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Ring of 2 with 3 records: a leading "dropped" line plus 2 events.
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	var drop struct {
		Kind  string `json:"kind"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &drop); err != nil {
		t.Fatal(err)
	}
	if drop.Kind != "dropped" || drop.Count != 1 {
		t.Fatalf("first line = %+v, want dropped/1", drop)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[2]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "period" || ev.Time != 3 {
		t.Fatalf("last event = %+v", ev)
	}
}

func TestSample(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a/b").Add(7)
	reg.Gauge("g/x").Set(1.5)
	r := New(4, 4)
	r.Sample(reg)
	ss := r.Samples()
	if len(ss) != 1 {
		t.Fatalf("samples = %d, want 1", len(ss))
	}
	if ss[0].Counters["a/b"] != 7 || ss[0].Gauges["g/x"] != 1.5 {
		t.Fatalf("sample = %+v", ss[0])
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x/hits").Add(3)
	reg.Histogram("x/rtt", []float64{1}).Observe(0.5)
	rec := New(16, 16)
	rec.Record("run", map[string]any{"app": "fib"})

	srv, err := Serve("127.0.0.1:0", reg, rec, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		`repro_counter{name="x/hits"} 3`,
		`repro_hist_count{name="x/rtt"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, ctype = get("/events")
	if ctype != "application/x-ndjson" {
		t.Fatalf("/events content type = %q", ctype)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	found := false
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "run" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/events missing the run event:\n%s", body)
	}

	// The background sampler must have fed the sample ring by now.
	deadline := time.Now().Add(2 * time.Second)
	for len(rec.Samples()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	body, _ = get("/samples")
	if !strings.Contains(body, `"x/hits":3`) {
		t.Fatalf("/samples missing sampled counter:\n%s", body)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", obs.NewRegistry(), New(1, 1), 0); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestRecorderClockMonotonic(t *testing.T) {
	r := New(4, 4)
	a := r.Now()
	time.Sleep(5 * time.Millisecond)
	if b := r.Now(); b <= a {
		t.Fatalf("clock went backwards: %g then %g", a, b)
	}
	// Record uses the same clock.
	r.Record("x", nil)
	ev := r.Events()[0]
	if ev.Time <= 0 {
		t.Fatalf("event at t=%g, want > 0", ev.Time)
	}
	_ = fmt.Sprintf("%v", ev)
}
