// Package record is the time-series layer between the obs registry and
// the exporters: a ring-buffered recorder that keeps (a) structured
// events — coordinator period records, adaptation decisions, run
// annotations — and (b) periodic samples of the whole obs registry, so
// a run's metric trajectory can be exported (JSONL, or scraped as
// Prometheus text via the bundled HTTP server) without ever growing
// unboundedly.
//
// Layering: obs depends on nothing; record depends on obs (it samples
// registries) and stdlib; the binaries wire a Recorder to their
// coordinator and serve it. Runtime packages never import record —
// they feed obs, and the event feed goes through plain callbacks
// (adapt.Config.Observer), so the hot paths stay free of JSON and
// HTTP.
package record

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// Event is one structured occurrence on the run's time axis. Data is
// marshalled as-is into the JSONL export; keep it a plain struct or
// map. Job, when set, attributes the event to one job of the
// multi-job service so durable sinks can index per-job decision logs.
type Event struct {
	Time float64 `json:"t"`
	Kind string  `json:"kind"`
	Job  string  `json:"job,omitempty"`
	Data any     `json:"data,omitempty"`
}

// Sample is one snapshot of an obs registry.
type Sample struct {
	Time     float64            `json:"t"`
	Counters map[string]uint64  `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// Sink receives every event and sample the recorder retains, as it
// arrives — the seam durable backends (internal/store) implement while
// the ring stays the bounded in-memory view. Sink methods are called
// from the recorder's producer paths (coordinator observer callbacks,
// the background sampler) and therefore must never block: enqueue or
// drop-and-count, never wait.
type Sink interface {
	PutEvent(Event)
	PutSample(Sample)
}

// Recorder keeps bounded rings of events and samples. Safe for
// concurrent use.
type Recorder struct {
	start time.Time

	mu             sync.Mutex
	clock          func() float64 // nil = wall seconds since start
	sink           Sink
	events         ring[Event]
	samples        ring[Sample]
	eventsDropped  uint64
	samplesDropped uint64
}

// New builds a recorder holding at most eventCap events and sampleCap
// samples; the oldest entries are overwritten when a ring is full
// (the drop is counted, never silent).
func New(eventCap, sampleCap int) *Recorder {
	return &Recorder{
		start:   time.Now(),
		events:  newRing[Event](eventCap),
		samples: newRing[Sample](sampleCap),
	}
}

// SetClock replaces the recorder's clock — the timestamp source for
// Record, RecordJob and Sample — so a driver living on virtual time
// (the DES behind gridsim) can put events AND samples on one shared
// axis instead of mixing virtual event stamps with wall-clock sample
// stamps. nil restores the default wall clock (seconds since New).
func (r *Recorder) SetClock(clock func() float64) {
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// Now returns the recorder's clock: seconds since New, unless SetClock
// installed another time source.
func (r *Recorder) Now() float64 {
	r.mu.Lock()
	clock := r.clock
	r.mu.Unlock()
	if clock != nil {
		return clock()
	}
	return time.Since(r.start).Seconds()
}

// SetSink attaches a durable sink: every subsequent event and sample
// is forwarded to it (in addition to the ring). nil detaches.
func (r *Recorder) SetSink(s Sink) {
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// Record appends an event stamped with the recorder's own clock.
func (r *Recorder) Record(kind string, data any) {
	r.RecordAt(r.Now(), kind, data)
}

// RecordAt appends an event with an explicit timestamp (e.g. a
// simulator's virtual time or a coordinator's period time).
func (r *Recorder) RecordAt(t float64, kind string, data any) {
	r.push(Event{Time: t, Kind: kind, Data: data})
}

// RecordJob appends an event attributed to one job of the multi-job
// service, stamped with the recorder's clock.
func (r *Recorder) RecordJob(job, kind string, data any) {
	r.push(Event{Time: r.Now(), Kind: kind, Job: job, Data: data})
}

func (r *Recorder) push(ev Event) {
	r.mu.Lock()
	if r.events.full() {
		r.eventsDropped++
	}
	r.events.push(ev)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink.PutEvent(ev)
	}
}

// Sample snapshots reg into the sample ring.
func (r *Recorder) Sample(reg *obs.Registry) {
	s := Sample{Time: r.Now(), Counters: reg.Snapshot(), Gauges: reg.Gauges()}
	r.mu.Lock()
	if r.samples.full() {
		r.samplesDropped++
	}
	r.samples.push(s)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink.PutSample(s)
	}
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events.all()
}

// Samples returns the retained samples, oldest first.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples.all()
}

// EventsDropped reports how many events were overwritten by ring
// wraparound.
func (r *Recorder) EventsDropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventsDropped
}

// SamplesDropped reports how many samples were overwritten by ring
// wraparound.
func (r *Recorder) SamplesDropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samplesDropped
}

// WriteEventsJSONL writes the retained events as one JSON object per
// line. When wraparound has dropped events, the first line says so.
func (r *Recorder) WriteEventsJSONL(w io.Writer) error {
	r.mu.Lock()
	events := r.events.all()
	dropped := r.eventsDropped
	r.mu.Unlock()
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, `{"kind":"dropped","count":%d}`+"\n", dropped); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// WriteSamplesJSONL writes the retained registry samples as JSONL.
// As with events, wraparound drops are announced on the first line —
// the drop is counted, never silent.
func (r *Recorder) WriteSamplesJSONL(w io.Writer) error {
	r.mu.Lock()
	samples := r.samples.all()
	dropped := r.samplesDropped
	r.mu.Unlock()
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, `{"kind":"dropped","count":%d}`+"\n", dropped); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	for _, s := range samples {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring[T any] struct {
	buf  []T
	next int
	n    int // entries held, <= len(buf)
}

func newRing[T any](capacity int) ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) full() bool { return r.n == len(r.buf) }

func (r *ring[T]) push(v T) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *ring[T]) all() []T {
	out := make([]T, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
