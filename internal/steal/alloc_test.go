package steal

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// The steal decision sits on every idle node's hot path: after the
// engine's scratch buffers warm up, a full Next/SyncDone/AsyncDone
// round must not allocate at all (ISSUE 7 ceiling; BENCH_5 measured 10
// allocs/op before the value-Directive rework).
func TestStealRoundAllocFree(t *testing.T) {
	members := make([]Member, 64)
	for i := range members {
		members[i] = Member{
			ID:      core.NodeID(fmt.Sprintf("n%02d", i)),
			Cluster: core.ClusterID(fmt.Sprintf("c%d", i%4)),
		}
	}
	for _, policy := range []Policy{CRS, Random} {
		e := New(policy, members[0].ID, members[0].Cluster, 1)
		e.Next(0, members) // warm the scratch buffers
		e.SyncDone(false)
		e.AsyncDone(true)
		allocs := testing.AllocsPerRun(100, func() {
			d := e.Next(0, members)
			if d.HasSync {
				e.SyncDone(false)
			}
			if d.HasAsync {
				e.AsyncDone(true)
			}
		})
		if allocs != 0 {
			t.Errorf("policy %v: steal round allocates %.1f/op, want 0", policy, allocs)
		}
	}
}
