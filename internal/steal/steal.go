// Package steal is the runtime-independent cluster-aware random work
// stealing (CRS) policy kernel. CRS is the load-balancing substrate
// the paper's adaptation story rests on (van Nieuwpoort et al.): an
// idle node issues synchronous steals against random victims in its
// own cluster while keeping at most ONE asynchronous wide-area steal
// outstanding, so WAN latency hides behind LAN attempts. The package
// also implements the StealRandom ablation (uniform victims, every
// WAN round trip paid synchronously — the baseline CRS was invented
// to beat), exponential back-off for fruitless rounds, and the
// inter-cluster wait-threshold accounting for a stalled wide-area
// steal.
//
// The kernel is pure policy: a membership snapshot goes in, steal
// directives come out. Both runtimes drive it — internal/des from its
// virtual-time event loop, satin from its live worker — so an
// identical membership/steal script produces the identical victim
// sequence from the same seed on either runtime.
package steal

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Process-global attempt counters, complementing each engine's
// per-node Stats: the observability endpoint reads these without
// enumerating engines. Resolved once; Next/done touch only atomics.
var (
	obsSyncLocal = obs.Default.Counter("steal/sync_local_attempts")
	obsSyncWide  = obs.Default.Counter("steal/sync_wide_attempts")
	obsAsync     = obs.Default.Counter("steal/async_attempts")
	obsHits      = obs.Default.Counter("steal/hits")
	obsMisses    = obs.Default.Counter("steal/misses")
)

// Policy selects the victim-selection algorithm.
type Policy int

const (
	// CRS is cluster-aware random stealing: one asynchronous
	// wide-area steal outstanding while synchronous local steals run —
	// Satin's algorithm, the default.
	CRS Policy = iota
	// Random picks victims uniformly from all nodes and steals
	// synchronously, paying every WAN round trip in the idle path.
	Random
)

// Member is one stealable peer in a membership snapshot.
type Member struct {
	ID      core.NodeID
	Cluster core.ClusterID
}

// Directive is the kernel's output for one steal round: whom to
// contact on which slot. It is a plain value — the steal decision sits
// on every idle node's hot path, and a by-value directive with
// presence flags keeps it allocation-free — so check HasSync/HasAsync
// before touching the victims.
type Directive struct {
	// Sync is the synchronous victim (CRS: always same-cluster;
	// Random: anyone); meaningful only when HasSync.
	Sync Member
	// HasSync reports that the synchronous slot was filled this round.
	HasSync bool
	// SyncWide reports that Sync sits in another cluster, so the
	// caller blocks on a WAN round trip (Random policy only).
	SyncWide bool
	// Async is the single outstanding asynchronous wide-area victim
	// (CRS only); meaningful only when HasAsync.
	Async Member
	// HasAsync reports that the asynchronous slot was filled this round.
	HasAsync bool
}

// Stats counts the attempts an engine issued. SyncWide is the number
// the paper cares about: synchronous cross-cluster round trips, which
// CRS keeps at zero by construction and Random pays in the idle path.
type Stats struct {
	SyncLocal int64 // synchronous same-cluster attempts
	SyncWide  int64 // synchronous cross-cluster attempts
	Async     int64 // asynchronous wide-area attempts (latency-hidden)
	Hits      int64 // attempts that brought a job back
}

// SeedFor derives a node's victim-selection stream from a run seed:
// seed ^ FNV-64a(id). Both runtimes use it, which is what makes their
// victim sequences comparable per node.
func SeedFor(seed int64, id core.NodeID) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return seed ^ int64(h.Sum64())
}

// Engine holds one node's steal-policy state: the seeded RNG, the
// sync/async slot occupancy, and the failure streak driving back-off.
// Methods are safe for concurrent use; the engine has its own narrow
// lock precisely so victim selection never serialises against a
// runtime's job push/pop path.
type Engine struct {
	policy  Policy
	self    core.NodeID
	cluster core.ClusterID

	mu         sync.Mutex
	rng        *rand.Rand
	syncOut    bool
	asyncOut   bool
	asyncSince float64 // engine time the async steal was issued
	failStreak int
	stats      Stats

	// scratch candidate buffers reused across Next calls (guarded by
	// mu), so victim selection allocates nothing in steady state.
	locals, remotes []Member

	// cached position of self inside the last View seen, so NextView
	// re-scans the home group only when membership actually changed.
	viewGen   uint64
	view      *View
	selfLocal int // index of self within its cluster group, -1 if absent
}

// New builds an engine for one node. seed is the node's stream (use
// SeedFor to derive it from a run seed).
func New(policy Policy, self core.NodeID, cluster core.ClusterID, seed int64) *Engine {
	return &Engine{
		policy:  policy,
		self:    self,
		cluster: cluster,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Next runs one steal round against a membership snapshot: it fills
// every free slot the policy allows and marks it in flight. now is
// the caller's clock in seconds (virtual or wall — the engine only
// ever compares differences). Candidates are considered in snapshot
// order, so identical snapshots yield identical victims.
func (e *Engine) Next(now float64, members []Member) Directive {
	e.mu.Lock()
	defer e.mu.Unlock()
	var d Directive
	if e.policy == Random {
		if e.syncOut {
			return d
		}
		all := e.locals[:0]
		for _, m := range members {
			if m.ID != e.self {
				all = append(all, m)
			}
		}
		e.locals = all
		if len(all) == 0 {
			return d
		}
		v := all[e.rng.Intn(len(all))]
		e.syncOut = true
		d.Sync = v
		d.HasSync = true
		d.SyncWide = v.Cluster != e.cluster
		if d.SyncWide {
			e.stats.SyncWide++
			obsSyncWide.Inc()
		} else {
			e.stats.SyncLocal++
			obsSyncLocal.Inc()
		}
		return d
	}
	// CRS: async (wide-area) slot first, then the synchronous local
	// slot — the draw order both runtimes historically used, kept so
	// one RNG stream drives both identically.
	locals, remotes := e.locals[:0], e.remotes[:0]
	for _, m := range members {
		if m.ID == e.self {
			continue
		}
		if m.Cluster == e.cluster {
			locals = append(locals, m)
		} else {
			remotes = append(remotes, m)
		}
	}
	e.locals, e.remotes = locals, remotes
	if !e.asyncOut && len(remotes) > 0 {
		d.Async = remotes[e.rng.Intn(len(remotes))]
		d.HasAsync = true
		e.asyncOut = true
		e.asyncSince = now
		e.stats.Async++
		obsAsync.Inc()
	}
	if !e.syncOut && len(locals) > 0 {
		d.Sync = locals[e.rng.Intn(len(locals))]
		d.HasSync = true
		e.syncOut = true
		e.stats.SyncLocal++
		obsSyncLocal.Inc()
	}
	return d
}

// View is a membership snapshot pre-indexed by cluster, shared by
// every engine in a simulation. Next re-partitions the whole snapshot
// on each call, which is fine for a live worker with one engine but
// O(nodes) per steal attempt — the dominant simulator cost at 10k
// nodes. A View is built once per membership change; NextView then
// draws victims in O(log cluster-size) without touching the other
// 9,900 members. The two paths are draw-for-draw identical: same
// rng.Intn ranges, same candidate ordering, so one seed produces one
// victim sequence regardless of which entry point the runtime uses.
type View struct {
	gen     uint64
	members []Member
	groups  map[core.ClusterID]*viewGroup
}

// viewGroup is one cluster's slice of the snapshot: its members in
// snapshot order plus their positions in the full snapshot, ascending
// (pos drives the order-preserving remote remap).
type viewGroup struct {
	gen     uint64 // stamp of the Rebuild that last filled this group
	members []Member
	pos     []int
}

// NewView allocates an empty view; call Rebuild to index a snapshot.
func NewView() *View {
	return &View{groups: make(map[core.ClusterID]*viewGroup)}
}

// Rebuild re-indexes the view over a fresh snapshot, reusing prior
// allocations. Groups of clusters absent from the new snapshot stay in
// the map but carry a stale gen stamp, so lookups treat them as empty.
func (v *View) Rebuild(members []Member) {
	v.gen++
	v.members = append(v.members[:0], members...)
	for i, m := range v.members {
		g := v.groups[m.Cluster]
		if g == nil {
			g = &viewGroup{}
			v.groups[m.Cluster] = g
		}
		if g.gen != v.gen {
			g.gen = v.gen
			g.members = g.members[:0]
			g.pos = g.pos[:0]
		}
		g.members = append(g.members, m)
		g.pos = append(g.pos, i)
	}
}

// Len reports the snapshot size.
func (v *View) Len() int { return len(v.members) }

// group returns the cluster's live group, nil if the cluster has no
// members in the current snapshot.
func (v *View) group(c core.ClusterID) *viewGroup {
	g := v.groups[c]
	if g == nil || g.gen != v.gen {
		return nil
	}
	return g
}

// remoteAt returns the j-th member of the snapshot with the cluster's
// own block filtered out, in snapshot order — the element Next's
// remotes[j] would hold. pos is sorted ascending, so the filtered
// index maps back to a snapshot index by counting how many excluded
// positions precede it; pos[k]-k is non-decreasing, which makes the
// predicate binary-searchable.
func (v *View) remoteAt(g *viewGroup, j int) Member {
	if g == nil {
		return v.members[j]
	}
	k := sort.Search(len(g.pos), func(k int) bool { return g.pos[k] > j+k })
	return v.members[j+k]
}

// refreshView re-locates self inside the view's home group. Called
// with e.mu held; O(cluster size), and only after a Rebuild.
func (e *Engine) refreshView(v *View) {
	e.view, e.viewGen = v, v.gen
	e.selfLocal = -1
	if g := v.group(e.cluster); g != nil {
		for i, m := range g.members {
			if m.ID == e.self {
				e.selfLocal = i
				break
			}
		}
	}
}

// NextView is Next against a pre-indexed shared snapshot: identical
// policy, slots, stats and RNG consumption, but victim selection costs
// O(log cluster-size) instead of a full-snapshot partition. Runtimes
// with many engines over one membership (the simulator) use this;
// runtimes with one engine per process can keep handing Next a slice.
func (e *Engine) NextView(now float64, v *View) Directive {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.view != v || e.viewGen != v.gen {
		e.refreshView(v)
	}
	g := v.group(e.cluster)
	nLocal := 0
	if g != nil {
		nLocal = len(g.members)
	}
	var d Directive
	if e.policy == Random {
		if e.syncOut {
			return d
		}
		// all = snapshot minus self, in snapshot order.
		n := len(v.members)
		if e.selfLocal >= 0 {
			n--
		}
		if n == 0 {
			return d
		}
		i := e.rng.Intn(n)
		if e.selfLocal >= 0 && i >= g.pos[e.selfLocal] {
			i++
		}
		vict := v.members[i]
		e.syncOut = true
		d.Sync = vict
		d.HasSync = true
		d.SyncWide = vict.Cluster != e.cluster
		if d.SyncWide {
			e.stats.SyncWide++
			obsSyncWide.Inc()
		} else {
			e.stats.SyncLocal++
			obsSyncLocal.Inc()
		}
		return d
	}
	// CRS: async slot first, then sync — the same draw order as Next.
	if nRemote := len(v.members) - nLocal; !e.asyncOut && nRemote > 0 {
		d.Async = v.remoteAt(g, e.rng.Intn(nRemote))
		d.HasAsync = true
		e.asyncOut = true
		e.asyncSince = now
		e.stats.Async++
		obsAsync.Inc()
	}
	nCand := nLocal
	if e.selfLocal >= 0 {
		nCand--
	}
	if !e.syncOut && nCand > 0 {
		i := e.rng.Intn(nCand)
		if e.selfLocal >= 0 && i >= e.selfLocal {
			i++
		}
		d.Sync = g.members[i]
		d.HasSync = true
		e.syncOut = true
		e.stats.SyncLocal++
		obsSyncLocal.Inc()
	}
	return d
}

// SyncDone clears the synchronous slot; got reports whether the
// attempt brought a job back.
func (e *Engine) SyncDone(got bool) { e.done(&e.syncOut, got) }

// AsyncDone clears the asynchronous wide-area slot.
func (e *Engine) AsyncDone(got bool) { e.done(&e.asyncOut, got) }

func (e *Engine) done(slot *bool, got bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	*slot = false
	if got {
		e.failStreak = 0
		e.stats.Hits++
		obsHits.Inc()
	} else {
		e.failStreak++
		obsMisses.Inc()
	}
}

// Outstanding reports whether any steal slot is in flight.
func (e *Engine) Outstanding() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.syncOut || e.asyncOut
}

// AsyncStalled reports whether the outstanding wide-area steal has
// been in flight longer than threshold: a healthy WAN round trip
// stays idle time, a saturated link must surface as inter-cluster
// communication overhead.
func (e *Engine) AsyncStalled(now, threshold float64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.asyncOut && now-e.asyncSince > threshold
}

// BackoffSec is the exponential retry delay after fruitless rounds:
// 2ms doubling per consecutive failure, capped at 250ms, so an idle
// node keeps probing without flooding anyone.
func (e *Engine) BackoffSec() float64 {
	e.mu.Lock()
	streak := e.failStreak
	e.mu.Unlock()
	backoff := 0.002 * float64(int(1)<<min(streak, 7))
	if backoff > 0.25 {
		backoff = 0.25
	}
	return backoff
}

// Stats snapshots the attempt counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
