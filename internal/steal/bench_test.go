package steal

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkNextCRS measures one victim-selection round on a 36-node,
// 3-cluster snapshot — the per-idle-loop cost the satin worker pays.
func BenchmarkNextCRS(b *testing.B) {
	benchNext(b, CRS)
}

func BenchmarkNextRandom(b *testing.B) {
	benchNext(b, Random)
}

func benchNext(b *testing.B, p Policy) {
	var ms []Member
	for c := 0; c < 3; c++ {
		for n := 0; n < 12; n++ {
			ms = append(ms, Member{
				ID:      core.NodeID(fmt.Sprintf("fs%d/%02d", c, n)),
				Cluster: core.ClusterID(fmt.Sprintf("fs%d", c)),
			})
		}
	}
	e := New(p, "fs0/00", "fs0", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := e.Next(0, ms)
		if d.HasSync {
			e.SyncDone(false)
		}
		if d.HasAsync {
			e.AsyncDone(false)
		}
	}
}
