package steal

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func members(ids ...string) []Member {
	var out []Member
	for _, id := range ids {
		// Convention: "c0/xx" lives in cluster c0.
		out = append(out, Member{ID: core.NodeID(id), Cluster: core.ClusterID(id[:2])})
	}
	return out
}

func TestCRSSlotDiscipline(t *testing.T) {
	e := New(CRS, "c0/00", "c0", 1)
	ms := members("c0/01", "c0/02", "c1/00", "c1/01")

	d := e.Next(0, ms)
	if !d.HasAsync || !d.HasSync {
		t.Fatalf("first round should fill both slots: %+v", d)
	}
	if d.Async.Cluster == "c0" {
		t.Fatalf("async victim %v is local", d.Async)
	}
	if d.Sync.Cluster != "c0" || d.SyncWide {
		t.Fatalf("CRS sync victim must be local: %+v", d)
	}
	// Both slots occupied: nothing new until a completion.
	if d2 := e.Next(0, ms); d2.HasAsync || d2.HasSync {
		t.Fatalf("slots full but Next issued %+v", d2)
	}
	if !e.Outstanding() {
		t.Fatal("Outstanding = false with both slots in flight")
	}
	e.SyncDone(false)
	if d3 := e.Next(0, ms); !d3.HasSync || d3.HasAsync {
		t.Fatalf("after SyncDone only the sync slot should refill: %+v", d3)
	}
	e.AsyncDone(false)
	e.SyncDone(false)
	if e.Outstanding() {
		t.Fatal("Outstanding = true with all slots cleared")
	}
}

func TestCRSNeverStealsWideSynchronously(t *testing.T) {
	e := New(CRS, "c0/00", "c0", 7)
	ms := members("c0/01", "c1/00", "c1/01", "c2/00")
	for i := 0; i < 200; i++ {
		d := e.Next(float64(i), ms)
		if d.HasSync {
			if d.SyncWide || d.Sync.Cluster != "c0" {
				t.Fatalf("round %d: CRS issued a synchronous WAN steal: %+v", i, d)
			}
			e.SyncDone(false)
		}
		if d.HasAsync {
			e.AsyncDone(false)
		}
	}
	if s := e.Stats(); s.SyncWide != 0 {
		t.Fatalf("CRS paid %d synchronous WAN round trips", s.SyncWide)
	}
}

func TestCRSOnlyLocalsNoAsync(t *testing.T) {
	e := New(CRS, "c0/00", "c0", 3)
	d := e.Next(0, members("c0/01", "c0/02"))
	if d.HasAsync {
		t.Fatalf("no remote clusters but async victim %v", d.Async)
	}
	if !d.HasSync {
		t.Fatal("local candidates but no sync victim")
	}
}

func TestRandomPaysWANSynchronously(t *testing.T) {
	e := New(Random, "c0/00", "c0", 11)
	ms := members("c0/01", "c1/00", "c1/01", "c1/02")
	sawWide := false
	for i := 0; i < 100; i++ {
		d := e.Next(0, ms)
		if d.HasAsync {
			t.Fatalf("Random policy issued an async steal: %+v", d)
		}
		if !d.HasSync {
			t.Fatal("candidates available but no victim")
		}
		if d.SyncWide {
			sawWide = true
			if d.Sync.Cluster == "c0" {
				t.Fatalf("SyncWide set for local victim %+v", d.Sync)
			}
		}
		e.SyncDone(false)
	}
	if !sawWide {
		t.Fatal("uniform selection over 3/4 remote candidates never drew one")
	}
	if s := e.Stats(); s.SyncWide == 0 {
		t.Fatal("stats recorded no synchronous WAN attempts")
	}
}

func TestNoCandidates(t *testing.T) {
	for _, p := range []Policy{CRS, Random} {
		e := New(p, "c0/00", "c0", 1)
		d := e.Next(0, members("c0/00")) // only ourselves
		if d.HasSync || d.HasAsync {
			t.Fatalf("policy %v stole from itself: %+v", p, d)
		}
	}
}

func TestBackoffGrowsAndResets(t *testing.T) {
	e := New(CRS, "c0/00", "c0", 1)
	if b := e.BackoffSec(); b != 0.002 {
		t.Fatalf("initial backoff = %v, want 0.002", b)
	}
	for i := 0; i < 3; i++ {
		e.SyncDone(false)
	}
	if b := e.BackoffSec(); b != 0.016 {
		t.Fatalf("backoff after 3 failures = %v, want 0.016", b)
	}
	for i := 0; i < 20; i++ {
		e.SyncDone(false)
	}
	if b := e.BackoffSec(); b != 0.25 {
		t.Fatalf("backoff cap = %v, want 0.25", b)
	}
	e.SyncDone(true)
	if b := e.BackoffSec(); b != 0.002 {
		t.Fatalf("backoff after a hit = %v, want reset to 0.002", b)
	}
}

func TestAsyncStalledThreshold(t *testing.T) {
	e := New(CRS, "c0/00", "c0", 1)
	ms := members("c1/00")
	d := e.Next(10.0, ms)
	if !d.HasAsync {
		t.Fatal("no async steal issued")
	}
	if e.AsyncStalled(10.02, 0.05) {
		t.Fatal("stalled before the threshold elapsed")
	}
	if !e.AsyncStalled(10.06, 0.05) {
		t.Fatal("not stalled after the threshold elapsed")
	}
	e.AsyncDone(false)
	if e.AsyncStalled(99, 0.05) {
		t.Fatal("stalled with no steal in flight")
	}
}

// TestSeedForMatchesLegacyDerivation pins the per-node stream formula
// both runtimes now share: seed ^ FNV-64a(id) — the derivation the
// satin node used before the kernel was extracted, so seeded runs
// stay replayable.
func TestSeedForMatchesLegacyDerivation(t *testing.T) {
	h := fnv.New64a()
	h.Write([]byte("fs0/03"))
	want := int64(42) ^ int64(h.Sum64())
	if got := SeedFor(42, "fs0/03"); got != want {
		t.Fatalf("SeedFor = %d, want %d", got, want)
	}
	if SeedFor(42, "fs0/03") == SeedFor(42, "fs0/04") {
		t.Fatal("distinct nodes derived the same stream")
	}
}

// TestCrossRuntimeVictimParity drives one membership/steal script
// through two engines constructed exactly as the DES driver
// (internal/des.addNode) and the satin driver (satin.StartNode) build
// theirs — same policy, identity and SeedFor stream — and requires
// the identical victim sequence. This is the cross-runtime parity the
// refactor pins: victim selection lives in ONE kernel, so the two
// runtimes cannot drift.
func TestCrossRuntimeVictimParity(t *testing.T) {
	const runSeed = 42
	self, cluster := core.NodeID("fs0/00"), core.ClusterID("fs0")

	// Membership churn script: (snapshot, sync outcome, async outcome).
	script := []struct {
		members  []Member
		syncGot  bool
		asyncGot bool
	}{
		{members("fs0/01", "fs0/02", "fs1/00", "fs1/01"), false, false},
		{members("fs0/01", "fs0/02", "fs1/00", "fs1/01"), true, false},
		{members("fs0/01", "fs1/00"), false, true},
		{members("fs0/01", "fs0/02", "fs0/03", "fs2/00"), false, false},
		{members("fs2/00"), true, true},
		{members("fs0/01", "fs0/02", "fs1/00", "fs1/01", "fs2/00"), true, true},
	}

	run := func(e *Engine) []core.NodeID {
		var seq []core.NodeID
		for i, step := range script {
			d := e.Next(float64(i), step.members)
			if d.HasAsync {
				seq = append(seq, d.Async.ID)
			}
			if d.HasSync {
				seq = append(seq, d.Sync.ID)
			}
			if d.HasSync {
				e.SyncDone(step.syncGot)
			}
			if d.HasAsync {
				e.AsyncDone(step.asyncGot)
			}
		}
		return seq
	}

	desEngine := New(CRS, self, cluster, SeedFor(runSeed, self))
	satinEngine := New(CRS, self, cluster, SeedFor(runSeed, self))
	desSeq := run(desEngine)
	satinSeq := run(satinEngine)

	if len(desSeq) == 0 {
		t.Fatal("script produced no victims")
	}
	if len(desSeq) != len(satinSeq) {
		t.Fatalf("victim sequences diverged: %v vs %v", desSeq, satinSeq)
	}
	for i := range desSeq {
		if desSeq[i] != satinSeq[i] {
			t.Fatalf("victim %d differs: %v vs %v", i, desSeq[i], satinSeq[i])
		}
	}
}

// TestViewMatchesSliceSelection pins NextView to Next draw-for-draw:
// over randomized membership/completion scripts, two engines with one
// seed — one fed the raw slice, one fed the pre-indexed View — must
// emit the identical directive sequence. This is what lets the
// simulator switch to the indexed path without perturbing a single
// seeded victim stream (and with it every recorded decision sequence).
func TestViewMatchesSliceSelection(t *testing.T) {
	for _, policy := range []Policy{CRS, Random} {
		for seed := int64(1); seed <= 20; seed++ {
			script := rand.New(rand.NewSource(seed * 977))
			self, home := core.NodeID("c1/01"), core.ClusterID("c1")
			a := New(policy, self, home, SeedFor(seed, self))
			b := New(policy, self, home, SeedFor(seed, self))
			view := NewView()
			for step := 0; step < 120; step++ {
				// Random membership: 0–3 clusters, 0–5 nodes each, with
				// self present in roughly half the snapshots; shuffled so
				// clusters interleave like join-order churn does.
				var ms []Member
				for c := 0; c < script.Intn(4); c++ {
					cl := core.ClusterID(fmt.Sprintf("c%d", c))
					for n := 0; n < script.Intn(6); n++ {
						id := core.NodeID(fmt.Sprintf("%s/%02d", cl, n))
						if id == self && script.Intn(2) == 0 {
							continue
						}
						ms = append(ms, Member{ID: id, Cluster: cl})
					}
				}
				script.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
				view.Rebuild(ms)
				da := a.Next(float64(step), ms)
				db := b.NextView(float64(step), view)
				if da != db {
					t.Fatalf("policy %v seed %d step %d: slice %+v vs view %+v (members %v)",
						policy, seed, step, da, db, ms)
				}
				if da.HasSync && script.Intn(3) > 0 {
					got := script.Intn(2) == 0
					a.SyncDone(got)
					b.SyncDone(got)
				}
				if da.HasAsync && script.Intn(3) > 0 {
					got := script.Intn(2) == 0
					a.AsyncDone(got)
					b.AsyncDone(got)
				}
				if a.Stats() != b.Stats() {
					t.Fatalf("policy %v seed %d step %d: stats diverged", policy, seed, step)
				}
			}
		}
	}
}
