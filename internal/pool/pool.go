// Package pool is the shared node-pool arbiter of the multi-job
// service: one Arbiter owns the grid's processors (a sched.Pool over
// the whole topology) and hands per-job Client handles through which
// each job's grid and adaptation coordinator bid for nodes. No grid
// owns the scheduler any more — allocation requests are capped by an
// admission-control + fair-share policy:
//
//   - work-conserving: while nobody else is waiting, a client may grow
//     past its fair share and use every free node (a lone job still
//     gets the whole grid, as in the single-job runtime);
//   - contended: as soon as some client is waiting below its share
//     ("needy"), clients at or above their share get nothing, so every
//     freed node flows to the starved jobs first;
//   - reclaim: a client holding more than its share while others are
//     needy sees a positive Pressure(); its adaptation coordinator
//     yields that many nodes at the next tick (coord's fair-share
//     yield), which is how a long-lived job hands capacity back
//     without being killed.
//
// Demand is what a client asked for and did not get; it expires after
// DemandTTL so a job that stopped bidding (its WAE recovered, or it
// finished provisioning) does not freeze the rest of the grid.
//
// Layering: pool depends on sched and topo only. satin.Grid talks to
// it through the satin.NodePool interface (a *sched.Pool satisfies the
// same interface, which is the single-job private-pool case);
// internal/job owns the Arbiter and registers one Client per job.
package pool

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/topo"
)

// Config tunes an Arbiter.
type Config struct {
	// DemandTTL is how long an unmet allocation request counts as
	// active demand (default 10s). It should comfortably exceed the
	// jobs' provisioning retry and adaptation periods.
	DemandTTL time.Duration
}

func (c *Config) defaults() {
	if c.DemandTTL == 0 {
		c.DemandTTL = 10 * time.Second
	}
}

// Arbiter owns the shared pool and the per-client accounting.
type Arbiter struct {
	cfg  Config
	pool *sched.Pool

	mu       sync.Mutex
	clients  map[string]*Client
	capacity int // non-dead nodes in the topology
	dead     map[core.NodeID]bool
	subs     []chan<- struct{}

	granted, denied *obs.Counter
}

// New builds an arbiter owning every node of the topology.
func New(t topo.Topology, cfg Config) (*Arbiter, error) {
	cfg.defaults()
	p, err := sched.NewPool(t)
	if err != nil {
		return nil, err
	}
	return &Arbiter{
		cfg:      cfg,
		pool:     p,
		clients:  make(map[string]*Client),
		capacity: t.TotalNodes(),
		dead:     make(map[core.NodeID]bool),
		granted:  obs.Default.Counter("pool/granted"),
		denied:   obs.Default.Counter("pool/denied"),
	}, nil
}

// Capacity returns the number of non-dead nodes the arbiter manages.
func (a *Arbiter) Capacity() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity
}

// Free returns the currently allocatable node count.
func (a *Arbiter) Free() int { return a.pool.FreeCount() }

// Subscribe registers a channel that gets a non-blocking send whenever
// nodes return to the pool — the job scheduler's wake-up call.
func (a *Arbiter) Subscribe(ch chan<- struct{}) {
	a.mu.Lock()
	a.subs = append(a.subs, ch)
	a.mu.Unlock()
}

func (a *Arbiter) notifyLocked() {
	for _, ch := range a.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// MarkDead removes a node from the grid permanently (site crash).
func (a *Arbiter) MarkDead(node core.NodeID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.markDeadLocked(node)
}

func (a *Arbiter) markDeadLocked(node core.NodeID) {
	if a.dead[node] {
		return
	}
	a.dead[node] = true
	a.capacity--
	a.pool.MarkDead(node)
	for _, c := range a.clients {
		delete(c.held, node)
	}
}

// Register creates a client handle. weight scales the client's fair
// share (default 1); maxNodes caps its total allocation (0 = no cap).
func (a *Arbiter) Register(id string, weight float64, maxNodes int) (*Client, error) {
	if weight <= 0 {
		weight = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.clients[id]; dup {
		return nil, fmt.Errorf("pool: client %q already registered", id)
	}
	c := &Client{
		arb:    a,
		id:     id,
		weight: weight,
		max:    maxNodes,
		held:   make(map[core.NodeID]sched.NodeRef),
	}
	a.clients[id] = c
	return c, nil
}

// shareLocked is the client's fair share of the pool, never below one
// node: capacity times its weight fraction.
func (a *Arbiter) shareLocked(c *Client) int {
	total := 0.0
	for _, o := range a.clients {
		total += o.weight
	}
	if total <= 0 {
		return a.capacity
	}
	share := int(float64(a.capacity) * c.weight / total)
	if share < 1 {
		share = 1
	}
	return share
}

// needyLocked reports whether any client other than c has live unmet
// demand while holding less than its share — the contended state.
func (a *Arbiter) needyLocked(c *Client, now time.Time) bool {
	for _, o := range a.clients {
		if o == c || o.want == 0 {
			continue
		}
		if now.Sub(o.wantAt) >= a.cfg.DemandTTL {
			continue
		}
		if len(o.held) < a.shareLocked(o) {
			return true
		}
	}
	return false
}

// allowanceLocked is how many more nodes c may take right now.
func (a *Arbiter) allowanceLocked(c *Client, now time.Time) int {
	allow := a.capacity - len(c.held) // work-conserving upper bound
	if a.needyLocked(c, now) {
		allow = a.shareLocked(c) - len(c.held)
	}
	if c.max > 0 && c.max-len(c.held) < allow {
		allow = c.max - len(c.held)
	}
	if allow < 0 {
		return 0
	}
	return allow
}

// Client is one job's handle on the shared pool. It satisfies the
// satin.NodePool interface, so a satin.Grid provisions and releases
// through it transparently; the fair-share cap is applied here.
type Client struct {
	arb    *Arbiter
	id     string
	weight float64
	max    int

	// guarded by arb.mu
	held   map[core.NodeID]sched.NodeRef
	want   int // unmet demand from the latest request
	wantAt time.Time
	closed bool
}

// granted records a grant outcome: held bookkeeping and demand update.
func (c *Client) grantedLocked(refs []sched.NodeRef, requested int) {
	for _, ref := range refs {
		c.held[ref.Node] = ref
	}
	c.want = requested - len(refs)
	c.wantAt = time.Now()
	c.arb.granted.Add(uint64(len(refs)))
	if c.want > 0 {
		c.arb.denied.Add(uint64(c.want))
	}
}

// AcquireN hands out up to n free nodes of one cluster, fair-share
// capped.
func (c *Client) AcquireN(cluster core.ClusterID, n int) []sched.NodeRef {
	a := c.arb
	a.mu.Lock()
	defer a.mu.Unlock()
	if c.closed {
		return nil
	}
	allow := a.allowanceLocked(c, time.Now())
	take := n
	if take > allow {
		take = allow
	}
	refs := a.pool.AcquireN(cluster, take)
	c.grantedLocked(refs, n)
	return refs
}

// RequestBandwidth allocates up to n nodes with locality preference and
// a minimum uplink-bandwidth bound, fair-share capped — the bid the
// job's adaptation coordinator places against every other job's.
func (c *Client) RequestBandwidth(n int, prefer []core.ClusterID, veto sched.Filter, minBW float64) []sched.NodeRef {
	a := c.arb
	a.mu.Lock()
	defer a.mu.Unlock()
	if c.closed {
		return nil
	}
	allow := a.allowanceLocked(c, time.Now())
	take := n
	if take > allow {
		take = allow
	}
	refs := a.pool.RequestBandwidth(take, prefer, veto, minBW)
	c.grantedLocked(refs, n)
	return refs
}

// Release returns one node to the shared pool and wakes waiters.
func (c *Client) Release(ref sched.NodeRef) {
	a := c.arb
	a.mu.Lock()
	delete(c.held, ref.Node)
	a.pool.Release(ref)
	a.notifyLocked()
	a.mu.Unlock()
}

// FreeIn returns the free node count of one cluster (unfiltered — the
// fair-share cap applies to grants, not to visibility).
func (c *Client) FreeIn(cluster core.ClusterID) int { return c.arb.pool.FreeIn(cluster) }

// MarkDead removes a node from the grid permanently.
func (c *Client) MarkDead(node core.NodeID) { c.arb.MarkDead(node) }

// Held returns how many nodes the client currently holds.
func (c *Client) Held() int {
	c.arb.mu.Lock()
	defer c.arb.mu.Unlock()
	return len(c.held)
}

// Pressure returns how many nodes the client should yield: the amount
// it holds beyond its fair share while other clients are needy. The
// job's adaptation coordinator polls this each tick and evicts that
// many of its worst nodes (without blacklisting them).
func (c *Client) Pressure() int {
	a := c.arb
	a.mu.Lock()
	defer a.mu.Unlock()
	if c.closed || !a.needyLocked(c, time.Now()) {
		return 0
	}
	over := len(c.held) - a.shareLocked(c)
	if over < 0 {
		return 0
	}
	return over
}

// Close releases everything the client still holds and unregisters it.
// Safe to call twice.
func (c *Client) Close() {
	a := c.arb
	a.mu.Lock()
	defer a.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, ref := range c.held {
		a.pool.Release(ref)
	}
	c.held = make(map[core.NodeID]sched.NodeRef)
	c.want = 0
	delete(a.clients, c.id)
	a.notifyLocked()
}
