package pool

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/topo"
)

func testTopo(clusters, nodes int) topo.Topology {
	var t topo.Topology
	names := []core.ClusterID{"fs0", "fs1", "fs2", "fs3"}
	for i := 0; i < clusters; i++ {
		t.Clusters = append(t.Clusters, topo.Cluster{
			ID: names[i], Nodes: nodes, Speed: 1,
			LANLatency: 1e-4, LANBandwidth: 1e8,
			WANLatency: 1e-3, UplinkBandwidth: 5e7,
		})
	}
	return t
}

func newArbiter(t *testing.T, clusters, nodes int, ttl time.Duration) *Arbiter {
	t.Helper()
	a, err := New(testTopo(clusters, nodes), Config{DemandTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func take(t *testing.T, c *Client, n int) []sched.NodeRef {
	t.Helper()
	return c.RequestBandwidth(n, nil, nil, 0)
}

// TestWorkConserving: a lone client may take every node — a single job
// still gets the whole grid, exactly as with a private pool.
func TestWorkConserving(t *testing.T) {
	a := newArbiter(t, 2, 4, time.Minute)
	c, err := a.Register("j1", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := take(t, c, 8); len(got) != 8 {
		t.Fatalf("lone client should get all 8 nodes, got %d", len(got))
	}
	if c.Held() != 8 {
		t.Fatalf("held accounting wrong: %d", c.Held())
	}
}

// TestContendedFairShare is the arbitration core: once a second client
// has live unmet demand below its share, the hog gets nothing more,
// sees reclaim pressure for its surplus, and every node it releases is
// claimable by the starved client.
func TestContendedFairShare(t *testing.T) {
	a := newArbiter(t, 2, 4, time.Minute)
	hog, _ := a.Register("hog", 1, 0)
	if got := take(t, hog, 8); len(got) != 8 {
		t.Fatalf("setup: hog should hold the grid, got %d", len(got))
	}

	late, _ := a.Register("late", 1, 0)
	if got := take(t, late, 4); len(got) != 0 {
		t.Fatalf("empty pool grants nothing, got %d", len(got))
	}
	// late is now needy below its share (4): the hog is over share and
	// must feel pressure for its surplus...
	if p := hog.Pressure(); p != 4 {
		t.Fatalf("hog pressure: want 4 (8 held - 4 share), got %d", p)
	}
	// ...and may not grow.
	if got := take(t, hog, 1); len(got) != 0 {
		t.Fatalf("over-share client must be denied while others starve, got %d", len(got))
	}
	// The hog yields two nodes; the needy client can claim them, the
	// hog still cannot.
	held := hog.heldRefs()
	hog.Release(held[0])
	hog.Release(held[1])
	if got := take(t, hog, 2); len(got) != 0 {
		t.Fatalf("freed nodes are reserved for the starved client, hog got %d", len(got))
	}
	if got := take(t, late, 4); len(got) != 2 {
		t.Fatalf("starved client should claim the freed nodes, got %d", len(got))
	}
	// Once late reaches its share, it is no longer needy; remaining
	// demand above the share does not freeze the pool.
	held = hog.heldRefs()
	hog.Release(held[0])
	hog.Release(held[1])
	if got := take(t, late, 2); len(got) != 2 {
		t.Fatalf("late should reach its share, got %d", len(got))
	}
	if p := hog.Pressure(); p != 0 {
		t.Fatalf("no needy client left, hog pressure should be 0, got %d", p)
	}
	// Work-conserving again: the hog frees a node and — with nobody
	// needy — may immediately take it back despite being at share.
	hog.Release(hog.heldRefs()[0])
	if got := take(t, hog, 1); len(got) != 1 {
		t.Fatalf("work-conserving again once nobody is needy, got %d", len(got))
	}
}

// TestDemandExpires: a client that stopped bidding loses its claim on
// contention after DemandTTL, so the pool never freezes on stale want.
func TestDemandExpires(t *testing.T) {
	a := newArbiter(t, 1, 4, 30*time.Millisecond)
	hog, _ := a.Register("hog", 1, 0)
	take(t, hog, 4)
	late, _ := a.Register("late", 1, 0)
	take(t, late, 2) // unmet: late is needy
	if got := take(t, hog, 1); len(got) != 0 {
		t.Fatal("hog must be denied while demand is live")
	}
	held := hog.heldRefs()
	hog.Release(held[0])
	time.Sleep(60 * time.Millisecond) // demand expires
	if got := take(t, hog, 1); len(got) != 1 {
		t.Fatal("expired demand must not block the pool")
	}
}

// TestMaxNodesCap: the per-client cap bounds even work-conserving
// growth.
func TestMaxNodesCap(t *testing.T) {
	a := newArbiter(t, 1, 8, time.Minute)
	c, _ := a.Register("j", 1, 3)
	if got := take(t, c, 8); len(got) != 3 {
		t.Fatalf("cap 3 must bound the grant, got %d", len(got))
	}
}

// TestCloseReleasesEverything: closing a client frees its nodes for
// others and drops its accounting — the cancel path's guarantee.
func TestCloseReleasesEverything(t *testing.T) {
	a := newArbiter(t, 1, 4, time.Minute)
	c1, _ := a.Register("j1", 1, 0)
	take(t, c1, 4)
	c2, _ := a.Register("j2", 1, 0)
	notify := make(chan struct{}, 1)
	a.Subscribe(notify)
	c1.Close()
	select {
	case <-notify:
	default:
		t.Fatal("Close must notify subscribers")
	}
	if got := take(t, c2, 4); len(got) != 4 {
		t.Fatalf("closed client's nodes must be claimable, got %d", len(got))
	}
	if a.Free() != 0 {
		t.Fatalf("free count wrong: %d", a.Free())
	}
}

// TestMarkDeadShrinksCapacity: dead nodes leave both the pool and the
// fair-share arithmetic.
func TestMarkDeadShrinksCapacity(t *testing.T) {
	a := newArbiter(t, 1, 4, time.Minute)
	c, _ := a.Register("j", 1, 0)
	refs := take(t, c, 2)
	a.MarkDead(refs[0].Node)
	a.MarkDead(refs[0].Node) // idempotent
	if a.Capacity() != 3 {
		t.Fatalf("capacity after one death: want 3, got %d", a.Capacity())
	}
	if c.Held() != 1 {
		t.Fatalf("dead node must leave the client's held set, got %d", c.Held())
	}
}

// heldRefs snapshots the client's held refs for tests.
func (c *Client) heldRefs() []sched.NodeRef {
	c.arb.mu.Lock()
	defer c.arb.mu.Unlock()
	out := make([]sched.NodeRef, 0, len(c.held))
	for _, ref := range c.held {
		out = append(out, ref)
	}
	return out
}
