// Package frametest is the shared test harness for the golden
// gob-vs-binary parity suites: every protocol package that gives its
// control frames a binary codec runs its edge-case value table through
// both codecs and asserts the decoded values are identical. It is
// imported from _test files only.
package frametest

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/wirefmt"
)

// Parity round-trips every value through the binary codec and through
// gob and fails the test unless all three values (original, binary
// round trip, gob round trip) are deeply equal. PT is the pointer type
// implementing the binary codec, exactly as the wire layer uses it.
func Parity[T any, PT interface {
	*T
	wirefmt.Frame
}](t *testing.T, vals []T) {
	t.Helper()
	for i, v := range vals {
		v := v
		// binary round trip
		enc, err := PT(&v).AppendWire(nil)
		if err != nil {
			t.Errorf("value %d (%+v): binary encode: %v", i, v, err)
			continue
		}
		var binOut T
		r := wirefmt.NewReader(enc)
		if err := PT(&binOut).DecodeWire(&r); err != nil {
			t.Errorf("value %d (%+v): binary decode: %v", i, v, err)
			continue
		}
		if err := r.Finish(); err != nil {
			t.Errorf("value %d (%+v): binary codec left trailing bytes: %v", i, v, err)
			continue
		}
		// gob round trip (a fresh session, as the wire layer's stream
		// codec would run it)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
			t.Errorf("value %d (%+v): gob encode: %v", i, v, err)
			continue
		}
		var gobOut T
		if err := gob.NewDecoder(&buf).Decode(&gobOut); err != nil {
			t.Errorf("value %d (%+v): gob decode: %v", i, v, err)
			continue
		}
		if !reflect.DeepEqual(binOut, gobOut) {
			t.Errorf("value %d: codecs disagree\n  binary: %+v\n  gob:    %+v", i, binOut, gobOut)
		}
		// Both codecs may normalise the same way (gob turns empty slices
		// into nil, and the binary codec follows it); that is fine as long
		// as they agree, checked above. What must not happen is gob
		// preserving the original while binary does not — then the binary
		// codec is lossy.
		if reflect.DeepEqual(gobOut, v) && !reflect.DeepEqual(binOut, v) {
			t.Errorf("value %d: binary codec lossy where gob is not\n  original: %+v\n  binary:   %+v", i, v, binOut)
		}
	}
}

// Corrupt asserts that decoding every truncation of enc and a set of
// single-byte corruptions either succeeds or fails cleanly — never
// panics, never over-reads. It complements the fuzz targets with a
// deterministic pass over a real frame's neighbourhood.
func Corrupt[T any, PT interface {
	*T
	wirefmt.Frame
}](t *testing.T, enc []byte) {
	t.Helper()
	decode := func(p []byte) {
		defer func() {
			if rec := recover(); rec != nil {
				t.Errorf("decode of %x panicked: %v", p, rec)
			}
		}()
		var out T
		r := wirefmt.NewReader(p)
		if err := PT(&out).DecodeWire(&r); err == nil {
			_ = r.Finish()
		}
	}
	for i := 0; i < len(enc); i++ {
		decode(enc[:i]) // every truncation
	}
	for i := 0; i < len(enc); i++ {
		q := append([]byte(nil), enc...)
		q[i] ^= 0xFF
		decode(q)
	}
}
