package wirefmt

import (
	"encoding/gob"
	"math"
	"strings"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendVarint(b, -1)
	b = AppendVarint(b, math.MinInt64)
	b = AppendVarint(b, math.MaxInt64)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendF64(b, math.Inf(-1))
	b = AppendF64(b, 3.5)
	b = AppendString(b, "héllo wörld ✓")
	b = AppendString(b, "")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBytes(b, nil)

	r := NewReader(b)
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint zero = %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Fatalf("uvarint max = %d", got)
	}
	if got := r.Varint(); got != -1 {
		t.Fatalf("varint -1 = %d", got)
	}
	if got := r.Varint(); got != math.MinInt64 {
		t.Fatalf("varint min = %d", got)
	}
	if got := r.Varint(); got != math.MaxInt64 {
		t.Fatalf("varint max = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools broken")
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Fatalf("f64 -inf = %v", got)
	}
	if got := r.F64(); got != 3.5 {
		t.Fatalf("f64 = %v", got)
	}
	if got := r.String(); got != "héllo wörld ✓" {
		t.Fatalf("string = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty string = %q", got)
	}
	if got := r.Bytes(); string(got) != "\x01\x02\x03" {
		t.Fatalf("bytes = %v", got)
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("nil bytes = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

// A length prefix larger than the remaining bytes must error without
// allocating or over-reading — the oversized-frame property.
func TestOversizedLengthRejected(t *testing.T) {
	b := AppendUvarint(nil, 1<<40) // claims a terabyte
	b = append(b, "tiny"...)
	r := NewReader(b)
	if s := r.String(); s != "" || r.Err() == nil {
		t.Fatalf("oversized length accepted: %q, err=%v", s, r.Err())
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uvarint() // fails: empty input
	if r.Err() == nil {
		t.Fatal("empty uvarint must error")
	}
	first := r.Err()
	_ = r.F64()
	_ = r.String()
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestBadBoolRejected(t *testing.T) {
	r := NewReader([]byte{7})
	if r.Bool(); r.Err() == nil {
		t.Fatal("bool byte 7 must be malformed")
	}
}

type gobPayload struct{ X int }

func init() { gob.Register(gobPayload{}) }

func TestGobBlobRoundTrip(t *testing.T) {
	b, err := AppendGob(nil, gobPayload{X: 41})
	if err != nil {
		t.Fatal(err)
	}
	b, err = AppendGob(b, nil) // explicit absence
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(b)
	var v1, v2 any
	if err := r.Gob(&v1); err != nil {
		t.Fatal(err)
	}
	if err := r.Gob(&v2); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if v1.(gobPayload).X != 41 || v2 != nil {
		t.Fatalf("gob blobs = %v, %v", v1, v2)
	}
}

func TestGobBlobUnregisteredTypeFailsCleanly(t *testing.T) {
	type never struct{ Y int }
	if _, err := AppendGob(nil, never{1}); err == nil {
		t.Fatal("encoding an unregistered type must fail")
	}
}

// FuzzReader drives every Reader method over arbitrary input: no
// sequence of reads may panic or read past the buffer.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xFF, 0x80, 0x80, 0x80})
	f.Add(AppendString(AppendUvarint(nil, 7), strings.Repeat("a", 40)))
	b, _ := AppendGob(nil, gobPayload{X: 1})
	f.Add(b)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		// A fixed op schedule covering every method; sticky errors make
		// the tail a no-op on short inputs.
		_ = r.Uvarint()
		_ = r.Varint()
		_ = r.Bool()
		_ = r.F64()
		_ = r.String()
		_ = r.Bytes()
		var v any
		_ = r.Gob(&v)
		if r.Remaining() < 0 {
			t.Fatalf("reader over-read: %d remaining", r.Remaining())
		}
		_ = r.Finish()
	})
}
