// Package wirefmt is the hand-rolled binary wire format the typed
// wire layer (internal/transport/wire) uses for the repository's
// fixed-shape control frames — steal requests and replies, statistics
// reports, registry traffic, the job protocol — instead of paying a
// gob round trip per frame. User task payloads (satin.Task values,
// task results) keep travelling as gob: they are open-ended Go values,
// and gob's type registry is exactly the right tool for them. A frame
// embeds such a payload as one length-prefixed gob blob.
//
// The format is deliberately boring: unsigned varints for integers,
// zig-zag varints for signed ones, fixed 8-byte little-endian IEEE 754
// for floats, length-prefixed bytes for strings and blobs. There is no
// per-frame type descriptor and no self-description — both ends of a
// link run the same binary, and the wire layer's kind string (carried
// once per frame by the transport) selects the decoder.
//
// Decoding is adversarial-input safe by construction: the Reader is
// bounds-checked and sticky-error, every length prefix is validated
// against the bytes actually remaining (a hostile length cannot cause
// an over-read or a huge allocation), and no decode path panics. The
// fuzz targets in this package and in the wire package hold that
// property.
package wirefmt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
)

// Frame is implemented (with pointer receivers for DecodeWire) by
// control-frame types that encode with the binary codec. The wire
// layer detects the interface at Register time; types that do not
// implement it ride the session gob stream as before.
type Frame interface {
	// AppendWire appends the value's encoding to b and returns the
	// extended slice. It fails only when an embedded gob payload cannot
	// be encoded (an unregistered concrete type).
	AppendWire(b []byte) ([]byte, error)
	// DecodeWire reads the value back from r. It must consume exactly
	// the bytes AppendWire produced and report (never panic on) any
	// malformed input via r's sticky error or its own.
	DecodeWire(r *Reader) error
}

// ErrMalformed is wrapped by every decoding failure this package
// detects itself (truncation, oversized length prefixes, trailing
// bytes).
var ErrMalformed = errors.New("wirefmt: malformed frame")

// ---- encoding ----

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v as a zig-zag signed varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendBool appends v as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendF64 appends v as 8 little-endian IEEE 754 bytes.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends p length-prefixed.
func AppendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendGob appends v as one length-prefixed gob blob — the escape
// hatch control frames use for open-ended user payloads (tasks, task
// results). A nil v encodes as an explicit absence marker, which gob
// itself cannot represent.
func AppendGob(b []byte, v any) ([]byte, error) {
	if v == nil {
		return append(b, 0), nil
	}
	b = append(b, 1)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return AppendBytes(b, buf.Bytes()), nil
}

// ---- decoding ----

// Reader decodes one frame from a byte slice. The zero value is not
// usable; build one with NewReader. All methods are bounds-checked and
// sticky-error: after the first failure every later call returns zero
// values, so decoders can run straight through and check Err once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader never mutates b.
func NewReader(b []byte) Reader { return Reader{b: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrMalformed, what, r.off)
	}
}

// Finish errors unless the frame was consumed exactly.
func (r *Reader) Finish() error {
	if r.err == nil && r.Remaining() > 0 {
		r.fail(fmt.Sprintf("%d trailing bytes", r.Remaining()))
	}
	return r.err
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// Bool reads one byte; anything but 0 or 1 is malformed.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail("truncated bool")
		return false
	}
	c := r.b[r.off]
	if c > 1 {
		r.fail("bad bool")
		return false
	}
	r.off++
	return c == 1
}

// F64 reads 8 little-endian IEEE 754 bytes.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Len reads a length prefix and validates it against the bytes
// actually remaining, so a hostile length can neither over-read nor
// drive a huge allocation.
func (r *Reader) Len() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.Remaining()) {
		r.fail(fmt.Sprintf("length %d exceeds %d remaining bytes", v, r.Remaining()))
		return 0
	}
	return int(v)
}

// view consumes and returns the next n bytes of the underlying buffer
// (no copy); n must already be validated by Len.
func (r *Reader) view(n int) []byte {
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// View consumes and returns the next n bytes without copying; n must
// come from Len. The returned slice aliases the Reader's buffer. Used
// by envelope parsers (frame batching) that hand sub-frames onward.
func (r *Reader) View(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n > r.Remaining() {
		r.fail("view past end")
		return nil
	}
	return r.view(n)
}

// Fail records a caller-detected format violation as the Reader's
// sticky error, so envelope parsers report their own invariants
// through the same channel as primitive failures.
func (r *Reader) Fail(what string) { r.fail(what) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil {
		return ""
	}
	return string(r.view(n))
}

// Bytes reads a length-prefixed byte slice (copied, safe to retain).
// Zero length decodes as nil, matching gob's treatment of empty
// slices.
func (r *Reader) Bytes() []byte {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	return append([]byte(nil), r.view(n)...)
}

// Gob reads a payload written by AppendGob into *v. Absent payloads
// leave *v nil.
func (r *Reader) Gob(v *any) error {
	present := r.Bool()
	if r.err != nil {
		return r.err
	}
	if !present {
		*v = nil
		return nil
	}
	n := r.Len()
	if r.err != nil {
		return r.err
	}
	blob := r.view(n)
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(v); err != nil {
		if r.err == nil {
			r.err = fmt.Errorf("%w: gob payload: %v", ErrMalformed, err)
		}
		return r.err
	}
	return nil
}
