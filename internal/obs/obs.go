// Package obs is the runtime's metric spine: a registry of named
// monotonic counters, gauges and fixed-bucket histograms that the
// messaging substrate, the steal path and the adaptation kernel feed,
// and that the chaos harness, the recorder (internal/record) and the
// binaries read back — so injected corruption, steal latency and
// per-period efficiency are accounted for instead of vanishing.
//
// Layering rule: obs depends on nothing but the standard library. Any
// package may feed it; internal/record samples it; exporters
// (WriteText, WritePrometheus, expvar) render it. Nothing in here may
// import another repro package.
//
// The hot path is allocation-free: callers resolve a *Counter /
// *Gauge / *Histogram once (registration time, session setup) and
// then only touch its atomics.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is one monotonic counter. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Registry holds named counters, gauges and histograms. Instrument
// resolution takes a lock and may allocate; keep the returned pointer
// and touch its atomics lock-free.
type Registry struct {
	mu    sync.RWMutex
	m     map[string]*Counter
	g     map[string]*Gauge
	h     map[string]*Histogram
	alias map[string]string // alias name -> canonical name
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		m:     make(map[string]*Counter),
		g:     make(map[string]*Gauge),
		h:     make(map[string]*Histogram),
		alias: make(map[string]string),
	}
}

// Alias links a second name to a gauge or histogram so renamed series
// stay visible under their historical name: both names resolve to the
// same instrument, and snapshots/exposition list both. Registration
// order does not matter — whichever side exists (or is created later)
// is mirrored to the other. Counters are deliberately not aliased:
// Total() sums by prefix and a mirrored counter would double-count.
// Idempotent; safe for concurrent use.
func (r *Registry) Alias(canonical, alias string) {
	if canonical == alias {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.alias[alias] = canonical
	if g, ok := r.g[canonical]; ok {
		r.g[alias] = g
	} else if g, ok := r.g[alias]; ok {
		r.g[canonical] = g
	}
	if h, ok := r.h[canonical]; ok {
		r.h[alias] = h
	} else if h, ok := r.h[alias]; ok {
		r.h[canonical] = h
	}
}

// mirrorAliases is called (write lock held) after an instrument is
// created under name: every name linked to it by Alias gets the same
// pointer, so lookups and exposition agree regardless of which side
// was resolved first. set stores under one linked name.
func (r *Registry) mirrorAliases(name string, set func(string)) {
	for alias, canon := range r.alias {
		if alias == name {
			set(canon)
		} else if canon == name {
			set(alias)
		}
	}
}

// Default is the process-wide registry the wire layer feeds.
var Default = NewRegistry()

// Counter returns the named counter, creating it at zero on first use.
// Names are conventionally "<layer>/<metric>/<label>", e.g.
// "wire/frames_in/steal" or "wire/bytes_out/lc0>lc1".
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.m[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.m[name]; ok {
		return c
	}
	c = &Counter{}
	r.m[name] = c
	return c
}

// Snapshot returns a copy of every counter's current value.
func (r *Registry) Snapshot() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.m))
	for name, c := range r.m {
		out[name] = c.Value()
	}
	return out
}

// Total sums every counter whose name starts with prefix — e.g.
// Total("wire/decode_err/") is the process-wide decode-error count.
func (r *Registry) Total(prefix string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sum uint64
	for name, c := range r.m {
		if strings.HasPrefix(name, prefix) {
			sum += c.Value()
		}
	}
	return sum
}

// WriteText dumps the non-zero counters, sorted by name — the binaries'
// end-of-run accounting report.
func (r *Registry) WriteText(w io.Writer) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name, v := range snap {
		if v > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-40s %d\n", name, snap[name])
	}
}

// publishOnce guards the expvar publication of Default (expvar panics
// on duplicate names).
var publishOnce sync.Once

// Publish exports the Default registry as the expvar variable "obs",
// so any process that serves the expvar handler exposes the counters.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
