package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("coord/wae")
	if v := g.Value(); v != 0 {
		t.Fatalf("fresh gauge = %g, want 0", v)
	}
	g.Set(0.42)
	if g2 := r.Gauge("coord/wae"); g2 != g {
		t.Fatal("second resolution returned a different gauge")
	}
	if v := r.Gauges()["coord/wae"]; v != 0.42 {
		t.Fatalf("Gauges() = %g, want 0.42", v)
	}
	g.Set(-3)
	if v := g.Value(); v != -3 {
		t.Fatalf("gauge after Set(-3) = %g", v)
	}
}

func TestHistogramBucketSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x/rtt", []float64{1, 2, 4})
	// Prometheus "le" semantics: a value equal to a bound lands in that
	// bound's bucket; anything above the last bound lands in +Inf.
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 100} {
		h.Observe(v)
	}
	view := r.Histograms()["x/rtt"]
	wantCounts := []uint64{2, 2, 1, 1} // le=1: {0.5,1}; le=2: {1.5,2}; le=4: {4}; +Inf: {100}
	if len(view.Counts) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(view.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if view.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, view.Counts[i], want, view.Counts)
		}
	}
	if view.Count != 6 {
		t.Fatalf("count = %d, want 6", view.Count)
	}
	if want := 0.5 + 1 + 1.5 + 2 + 4 + 100; math.Abs(view.Sum-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", view.Sum, want)
	}
	if h2 := r.Histogram("x/rtt", []float64{9, 99}); h2 != h {
		t.Fatal("second resolution returned a different histogram")
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	r := NewRegistry()
	for name, bounds := range map[string][]float64{
		"empty":         {},
		"non-ascending": {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Histogram(%s, %v) did not panic", name, bounds)
				}
			}()
			r.Histogram(name, bounds)
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalF(exp, want) {
		t.Fatalf("ExpBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(0.1, 0.1, 3)
	if len(lin) != 3 || math.Abs(lin[2]-0.3) > 1e-12 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	for i := 1; i < len(WAEBuckets); i++ {
		if WAEBuckets[i] <= WAEBuckets[i-1] {
			t.Fatalf("WAEBuckets not ascending: %v", WAEBuckets)
		}
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire/frames_in/steal").Add(17)
	r.Gauge("coord/wae").Set(0.42)
	h := r.Histogram("satin/steal_rtt/local", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE repro_counter counter",
		`repro_counter{name="wire/frames_in/steal"} 17`,
		"# TYPE repro_gauge gauge",
		`repro_gauge{name="coord/wae"} 0.42`,
		"# TYPE repro_hist histogram",
		`repro_hist_bucket{name="satin/steal_rtt/local",le="0.001"} 2`,
		`repro_hist_bucket{name="satin/steal_rtt/local",le="0.01"} 2`, // cumulative
		`repro_hist_bucket{name="satin/steal_rtt/local",le="+Inf"} 3`,
		`repro_hist_count{name="satin/steal_rtt/local"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrent drives every instrument kind and every reader
// concurrently; its assertions are deliberately weak — the point is
// the -race run.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				r.Counter("c/shared").Inc()
				r.Gauge("g/shared").Set(float64(j))
				r.Histogram("h/shared", []float64{1, 10, 100}).Observe(float64(j % 150))
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				r.Snapshot()
				r.Total("c/")
				r.Gauges()
				r.Histograms()
				r.WritePrometheus(discard{})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c/shared").Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	view := r.Histograms()["h/shared"]
	if view.Count != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", view.Count, goroutines*iters)
	}
	var sum uint64
	for _, c := range view.Counts {
		sum += c
	}
	if sum != view.Count {
		t.Fatalf("bucket sum %d != count %d", sum, view.Count)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
