package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Gauge is one instantaneous value (queue depth, latest WAE). The zero
// value reads 0 and is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the named gauge, creating it at zero on first use.
// Naming follows the counter convention, "<layer>/<metric>/<label>".
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.g[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.g[name]; ok {
		return g
	}
	g = &Gauge{}
	r.g[name] = g
	r.mirrorAliases(name, func(n string) { r.g[n] = g })
	return g
}

// Gauges returns a copy of every gauge's current value.
func (r *Registry) Gauges() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.g))
	for name, g := range r.g {
		out[name] = g.Value()
	}
	return out
}

// Histogram is a fixed-bucket histogram: observations land in the
// first bucket whose upper bound is >= the value (Prometheus "le"
// semantics), with an implicit +Inf bucket at the end. Observe is
// lock-free: one atomic add per bucket/count plus a CAS loop for the
// sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds; immutable after creation
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// HistView is one histogram's snapshot: per-bucket counts (the last
// entry is the +Inf bucket), the observation sum and total count.
type HistView struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use; later resolutions of the same name keep
// the original bounds (pass the same ones). Bounds must be ascending
// and non-empty.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.h[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs bucket bounds", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.h[name]; ok {
		return h
	}
	h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.h[name] = h
	r.mirrorAliases(name, func(n string) { r.h[n] = h })
	return h
}

// Histograms returns a snapshot of every histogram.
func (r *Registry) Histograms() map[string]HistView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HistView, len(r.h))
	for name, h := range r.h {
		v := HistView{
			Bounds: h.bounds,
			Counts: make([]uint64, len(h.counts)),
			Sum:    math.Float64frombits(h.sum.Load()),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			v.Counts[i] = h.counts[i].Load()
		}
		out[name] = v
	}
	return out
}

// LatencyBuckets are the standard round-trip buckets, in seconds:
// 0.5ms doubling up to ~8s — wide enough for a LAN steal probe and a
// saturated WAN link alike.
var LatencyBuckets = ExpBuckets(0.0005, 2, 15)

// HealthBuckets split the unit objective-health interval in tenths —
// the resolution the batch E_min/E_max thresholds (0.30/0.50) operate
// at; streaming health above 1 (comfortably under the latency target)
// lands in the implicit +Inf bucket.
var HealthBuckets = LinearBuckets(0.1, 0.1, 10)

// WAEBuckets is the historical name of HealthBuckets, kept so existing
// callers and dashboards keep working.
var WAEBuckets = HealthBuckets

// DepthBuckets are power-of-two queue-depth buckets.
var DepthBuckets = ExpBuckets(1, 2, 12)

// ExpBuckets returns n upper bounds starting at start, multiplying by
// factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds starting at start, adding step.
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}
