package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// labelEscaper escapes a registry name for use as a Prometheus label
// value (names contain '/' and '>', which are fine; quotes, backslashes
// and newlines are not).
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WritePrometheus renders the whole registry in the Prometheus text
// exposition format (version 0.0.4). Instruments keep their registry
// names as the "name" label of three fixed metric families —
// repro_counter, repro_gauge and repro_hist — so arbitrary
// "<layer>/<metric>/<label>" names need no sanitisation:
//
//	repro_counter{name="wire/frames_in/steal"} 17
//	repro_gauge{name="coord/wae"} 0.42
//	repro_hist_bucket{name="satin/steal_rtt/local",le="0.001"} 5
func (r *Registry) WritePrometheus(w io.Writer) {
	counters := r.Snapshot()
	if len(counters) > 0 {
		fmt.Fprintf(w, "# HELP repro_counter Monotonic counters from the obs registry.\n")
		fmt.Fprintf(w, "# TYPE repro_counter counter\n")
		for _, name := range sortedKeys(counters) {
			fmt.Fprintf(w, "repro_counter{name=%q} %d\n", labelEscaper.Replace(name), counters[name])
		}
	}
	gauges := r.Gauges()
	if len(gauges) > 0 {
		fmt.Fprintf(w, "# HELP repro_gauge Instantaneous values from the obs registry.\n")
		fmt.Fprintf(w, "# TYPE repro_gauge gauge\n")
		for _, name := range sortedKeys(gauges) {
			fmt.Fprintf(w, "repro_gauge{name=%q} %g\n", labelEscaper.Replace(name), gauges[name])
		}
	}
	hists := r.Histograms()
	if len(hists) > 0 {
		fmt.Fprintf(w, "# HELP repro_hist Fixed-bucket histograms from the obs registry.\n")
		fmt.Fprintf(w, "# TYPE repro_hist histogram\n")
		for _, name := range sortedKeys(hists) {
			h := hists[name]
			esc := labelEscaper.Replace(name)
			cum := uint64(0)
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(w, "repro_hist_bucket{name=%q,le=%q} %d\n", esc, fmt.Sprintf("%g", b), cum)
			}
			cum += h.Counts[len(h.Bounds)]
			fmt.Fprintf(w, "repro_hist_bucket{name=%q,le=\"+Inf\"} %d\n", esc, cum)
			fmt.Fprintf(w, "repro_hist_sum{name=%q} %g\n", esc, h.Sum)
			fmt.Fprintf(w, "repro_hist_count{name=%q} %d\n", esc, h.Count)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
