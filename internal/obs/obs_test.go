package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wire/frames_in/steal")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if again := r.Counter("wire/frames_in/steal"); again != c {
		t.Fatal("same name must resolve to the same counter")
	}
}

func TestSnapshotAndTotal(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire/decode_err/steal").Add(2)
	r.Counter("wire/decode_err/report").Add(3)
	r.Counter("wire/frames_in/steal").Add(7)
	if got := r.Total("wire/decode_err/"); got != 5 {
		t.Fatalf("Total(decode_err) = %d, want 5", got)
	}
	snap := r.Snapshot()
	if snap["wire/frames_in/steal"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestWriteTextSortedNonZero(t *testing.T) {
	r := NewRegistry()
	r.Counter("b/two").Add(2)
	r.Counter("a/one").Add(1)
	r.Counter("c/zero") // stays zero: not printed
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	ia, ib := strings.Index(out, "a/one"), strings.Index(out, "b/two")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("dump not sorted or missing entries:\n%s", out)
	}
	if strings.Contains(out, "c/zero") {
		t.Fatalf("zero counter printed:\n%s", out)
	}
}

func TestConcurrentCounting(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hot")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hot").Value(); got != 8000 {
		t.Fatalf("got %d, want 8000", got)
	}
}
