package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wire/frames_in/steal")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if again := r.Counter("wire/frames_in/steal"); again != c {
		t.Fatal("same name must resolve to the same counter")
	}
}

func TestSnapshotAndTotal(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire/decode_err/steal").Add(2)
	r.Counter("wire/decode_err/report").Add(3)
	r.Counter("wire/frames_in/steal").Add(7)
	if got := r.Total("wire/decode_err/"); got != 5 {
		t.Fatalf("Total(decode_err) = %d, want 5", got)
	}
	snap := r.Snapshot()
	if snap["wire/frames_in/steal"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestWriteTextSortedNonZero(t *testing.T) {
	r := NewRegistry()
	r.Counter("b/two").Add(2)
	r.Counter("a/one").Add(1)
	r.Counter("c/zero") // stays zero: not printed
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	ia, ib := strings.Index(out, "a/one"), strings.Index(out, "b/two")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("dump not sorted or missing entries:\n%s", out)
	}
	if strings.Contains(out, "c/zero") {
		t.Fatalf("zero counter printed:\n%s", out)
	}
}

func TestConcurrentCounting(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hot")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hot").Value(); got != 8000 {
		t.Fatalf("got %d, want 8000", got)
	}
}

func TestAliasMirrorsGaugesAndHistograms(t *testing.T) {
	// Alias before creation: the later instrument lands under both names.
	r := NewRegistry()
	r.Alias("coord/health", "coord/wae")
	g := r.Gauge("coord/health")
	if r.Gauge("coord/wae") != g {
		t.Fatal("alias registered first: gauge not mirrored")
	}
	g.Set(0.75)
	gs := r.Gauges()
	if gs["coord/health"] != 0.75 || gs["coord/wae"] != 0.75 {
		t.Fatalf("gauge snapshot missing a name: %v", gs)
	}
	h := r.Histogram("coord/period_health", HealthBuckets)
	r.Alias("coord/period_health", "coord/period_wae")
	if r.Histogram("coord/period_wae", HealthBuckets) != h {
		t.Fatal("alias registered second: histogram not mirrored")
	}
	h.Observe(0.45)
	hs := r.Histograms()
	if hs["coord/period_health"].Count != 1 || hs["coord/period_wae"].Count != 1 {
		t.Fatalf("histogram snapshot missing a name: %v", hs)
	}

	// Resolving through the alias first must still converge on one
	// instrument once the canonical side is resolved.
	r2 := NewRegistry()
	r2.Alias("coord/health", "coord/wae")
	old := r2.Gauge("coord/wae")
	if r2.Gauge("coord/health") != old {
		t.Fatal("alias resolved first: canonical name got a second gauge")
	}

	// Idempotence and self-aliasing are harmless.
	r2.Alias("coord/health", "coord/wae")
	r2.Alias("coord/health", "coord/health")
	if r2.Gauge("coord/wae") != old {
		t.Fatal("re-aliasing replaced the instrument")
	}
}

func TestAliasDoesNotMirrorCounters(t *testing.T) {
	// Counters stay un-aliased: Total() sums by prefix, and a mirrored
	// counter under a second name would double-count.
	r := NewRegistry()
	r.Alias("wire/frames_in/steal", "wire/frames_in/steal_v2")
	r.Counter("wire/frames_in/steal").Add(5)
	if got := r.Total("wire/frames_in/"); got != 5 {
		t.Fatalf("Total = %d, want 5 (counter was mirrored)", got)
	}
	if _, ok := r.Snapshot()["wire/frames_in/steal_v2"]; ok {
		t.Fatal("counter mirrored under alias name")
	}
}
