// Barnes-Hut N-body on the satin runtime: the application of the
// paper's evaluation, run for a few time steps on an emulated
// three-cluster grid. Each iteration's force phase is a
// divide-and-conquer task tree balanced by cluster-aware random work
// stealing; the printed per-iteration durations are the real-runtime
// counterpart of the paper's Figures 3–7 series.
//
//	go run ./examples/barneshut
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/satin"
)

func main() {
	const (
		nBodies = 1500
		steps   = 5
		theta   = 0.5
		dt      = 0.005
	)
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "fs0", Nodes: 3},
			{Name: "fs1", Nodes: 3},
			{Name: "fs2", Nodes: 3},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	for _, c := range []satin.ClusterID{"fs0", "fs1", "fs2"} {
		if _, err := g.StartNodes(c, 3); err != nil {
			log.Fatal(err)
		}
	}
	master := g.Node("fs0/00")

	bodies := apps.Plummer(nBodies, 42)
	fmt.Printf("Barnes-Hut: %d bodies, %d steps, theta=%.2f, 9 nodes / 3 clusters\n",
		nBodies, steps, theta)
	for iter := 0; iter < steps; iter++ {
		start := time.Now()
		val, err := master.Run(apps.BHForces{
			Bodies: bodies, Lo: 0, Hi: len(bodies), Theta: theta, Grain: 128,
		})
		if err != nil {
			log.Fatal(err)
		}
		accs := val.([]apps.Accel)
		apps.StepBodies(bodies, accs, dt)
		fmt.Printf("  iteration %d: %v\n", iter, time.Since(start).Round(time.Millisecond))
	}

	// A cheap sanity statistic: the cluster should stay bound.
	var r2 float64
	for _, b := range bodies {
		r2 += b.X*b.X + b.Y*b.Y + b.Z*b.Z
	}
	fmt.Printf("mean squared radius after %d steps: %.3f\n", steps, r2/float64(nBodies))
}
