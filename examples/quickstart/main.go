// Quickstart: run a divide-and-conquer computation on a two-cluster
// emulated grid with the satin runtime, then print the result and the
// per-node statistics the adaptation coordinator would consume.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/apps"
	"repro/satin"
)

func main() {
	// An emulated deployment: two clusters of four nodes, LAN/WAN
	// latencies in the style of the paper's DAS-2 (scaled to
	// millisecond task granularity).
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "amsterdam", Nodes: 4},
			{Name: "delft", Nodes: 4},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	if _, err := g.StartNodes("amsterdam", 4); err != nil {
		log.Fatal(err)
	}
	if _, err := g.StartNodes("delft", 4); err != nil {
		log.Fatal(err)
	}
	master := g.Node("amsterdam/00")

	fmt.Println("computing fib(24) on 8 nodes in 2 clusters...")
	start := time.Now()
	val, err := master.Run(apps.Fib{N: 24, SeqCutoff: 12, LeafDelay: 5 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fib(24) leaf count = %d (expected %d) in %v\n",
		val, apps.FibLeaves(24), time.Since(start).Round(time.Millisecond))

	// The statistics every node collects per monitoring period — the
	// input of the paper's weighted-average-efficiency metric.
	nodes := g.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID() < nodes[j].ID() })
	fmt.Println("\nper-node accounting (busy / intra-comm / inter-comm seconds):")
	for _, n := range nodes {
		rep := n.Report()
		fmt.Printf("  %-14s busy=%.3f intra=%.3f inter=%.3f idle=%.3f\n",
			n.ID(), rep.BusySec, rep.IntraSec, rep.InterSec, rep.IdleSec)
	}
}
