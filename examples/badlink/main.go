// The paper's overloaded-network-link scenario on the REAL runtime:
// three emulated clusters run an iterative computation while the
// adaptation coordinator watches; one cluster's WAN link is throttled
// hard, its nodes' inter-cluster overhead explodes, and the
// coordinator evicts them and backfills from healthy clusters.
//
//	go run ./examples/badlink
package main

import (
	"fmt"
	"log"
	"time"

	"repro/adapt"
	"repro/internal/apps"
	"repro/satin"
)

func main() {
	period := 500 * time.Millisecond
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "fs0", Nodes: 8},
			{Name: "fs1", Nodes: 8},
			{Name: "fs2", Nodes: 4},
		},
		Node: satin.NodeConfig{
			Coordinator:   adapt.EndpointName,
			MonitorPeriod: period,
			Bench:         apps.Fib{N: 17, SeqCutoff: 17},
			BenchWork:     float64(apps.FibLeaves(17)),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	for _, c := range []satin.ClusterID{"fs0", "fs1", "fs2"} {
		if _, err := g.StartNodes(c, 4); err != nil {
			log.Fatal(err)
		}
	}
	master := g.Node("fs0/00")

	coord, err := adapt.Start(g.Fabric(), g, adapt.Config{
		Period:    period,
		Protected: []adapt.NodeID{master.ID()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Stop()

	fmt.Println("12 nodes / 3 clusters; throttling fs2's WAN link to 5 KB/s at t=1s")
	time.AfterFunc(time.Second, func() { g.Shape("fs2", 5e3) })

	stop := time.After(8 * time.Second)
	iter := 0
	for {
		select {
		case <-stop:
			fmt.Println("\ncoordinator history:")
			for _, h := range coord.History() {
				fmt.Printf("  WAE=%.3f nodes=%2d action=%-14s +%d -%d  %s\n",
					h.WAE, h.Nodes, h.Action, h.Added, h.Removed, h.Detail)
			}
			fmt.Printf("\nlearned requirements: %s\n", coord.Requirements())
			left := map[satin.ClusterID]int{}
			for _, n := range g.Nodes() {
				left[n.Cluster()]++
			}
			fmt.Printf("final allocation per cluster: %v\n", left)
			return
		default:
		}
		start := time.Now()
		fut := master.Submit(apps.Fib{N: 22, SeqCutoff: 12, LeafDelay: 5 * time.Millisecond})
		fut.Wait()
		if _, err := fut.Result(); err != nil {
			log.Fatal(err)
		}
		iter++
		fmt.Printf("  iteration %2d: %7v  (%d nodes)\n",
			iter, time.Since(start).Round(time.Millisecond), g.NodeCount())
	}
}
