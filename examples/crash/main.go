// The paper's crashing-nodes scenario on the REAL runtime: a cluster
// dies abruptly mid-computation; Satin-style fault tolerance recomputes
// the orphaned jobs, and the adaptation coordinator replaces the lost
// capacity from the surviving sites.
//
//	go run ./examples/crash
package main

import (
	"fmt"
	"log"
	"time"

	"repro/adapt"
	"repro/internal/apps"
	"repro/internal/registry"
	"repro/satin"
)

func main() {
	period := 500 * time.Millisecond
	fast := registry.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		FailureTimeout:    250 * time.Millisecond,
	}
	g, err := satin.NewGrid(satin.GridConfig{
		Clusters: []satin.ClusterSpec{
			{Name: "fs0", Nodes: 4},
			{Name: "fs1", Nodes: 4},
			{Name: "fs2", Nodes: 8}, // spare capacity for replacements
		},
		Registry: fast,
		Node: satin.NodeConfig{
			Registry:      fast,
			Coordinator:   adapt.EndpointName,
			MonitorPeriod: period,
			Bench:         apps.Fib{N: 17, SeqCutoff: 17},
			BenchWork:     float64(apps.FibLeaves(17)),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	for _, c := range []satin.ClusterID{"fs0", "fs1"} {
		if _, err := g.StartNodes(c, 4); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := g.StartNodes("fs2", 4); err != nil {
		log.Fatal(err)
	}
	master := g.Node("fs0/00")

	coord, err := adapt.Start(g.Fabric(), g, adapt.Config{
		Period:    period,
		Protected: []adapt.NodeID{master.ID()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Stop()

	fmt.Println("12 nodes / 3 clusters; cluster fs1 crashes at t=2s")
	time.AfterFunc(2*time.Second, func() {
		killed := g.CrashCluster("fs1")
		fmt.Printf("  !! crashed %d nodes of fs1\n", killed)
	})

	deadline := time.After(8 * time.Second)
	iter := 0
loop:
	for {
		select {
		case <-deadline:
			break loop
		default:
		}
		start := time.Now()
		val, err := master.Run(apps.Fib{N: 22, SeqCutoff: 12, LeafDelay: 5 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		if val.(int) != apps.FibLeaves(22) {
			log.Fatalf("wrong answer after crash: %v (work was lost!)", val)
		}
		iter++
		fmt.Printf("  iteration %2d: %7v  (%d nodes) result ok\n",
			iter, time.Since(start).Round(time.Millisecond), g.NodeCount())
	}
	fmt.Println("\ncoordinator history:")
	for _, h := range coord.History() {
		fmt.Printf("  WAE=%.3f nodes=%2d action=%-12s +%d -%d\n",
			h.WAE, h.Nodes, h.Action, h.Added, h.Removed)
	}
	fmt.Printf("final node count: %d (every iteration returned the exact answer)\n", g.NodeCount())
}
