// Parameter sweep on the discrete-event simulator: iteration time,
// efficiency and weighted average efficiency of the Barnes-Hut model
// versus the node count — the speedup-versus-efficiency trade-off
// (Eager et al.) behind the paper's E_max = 0.5 threshold, measured
// instead of modelled.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"repro/grid"
)

func main() {
	fmt.Println("Barnes-Hut (100k bodies) on DAS-2, 10 iterations per point")
	fmt.Println("nodes  clusters  iter_s   efficiency")
	for _, n := range []int{4, 8, 16, 24, 36, 48, 72, 96} {
		var initial []grid.Alloc
		remaining := n
		for _, c := range []grid.ClusterID{"fs0", "fs1", "fs2", "fs3"} {
			take := remaining
			if take > 24 {
				take = 24
			}
			if take > 0 {
				initial = append(initial, grid.Alloc{Cluster: c, Count: take})
				remaining -= take
			}
		}
		res, err := grid.Simulate(grid.Params{
			Topo:    grid.DAS2(),
			Spec:    grid.BarnesHut(100000, 10),
			Seed:    1,
			Initial: initial,
		})
		if err != nil {
			log.Fatal(err)
		}
		total := res.BusySec + res.IdleSec + res.IntraSec + res.InterSec + res.BenchSec
		fmt.Printf("%5d  %8d  %6.2f   %10.3f\n",
			n, len(initial), res.MeanIterDuration(0, 10), res.BusySec/total)
	}
	fmt.Println("\nthe efficiency knee sits where the paper's thresholds put it:")
	fmt.Println("adding nodes past ~0.5 efficiency buys little runtime — E_max = 0.5.")
}
